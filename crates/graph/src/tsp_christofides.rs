//! Christofides-style tour construction.
//!
//! Instead of doubling every MST edge (Algorithm 2's 2-approximation), add
//! a minimum-weight perfect matching over the MST's odd-degree vertices:
//! the union is Eulerian, and short-cutting its circuit yields the tour.
//! With an exact matching this is Christofides' 3/2-approximation; we use
//! the greedy + 2-swap matching of [`crate::matching`], so the formal
//! guarantee is the doubling bound, while the *empirical* tours are
//! consistently shorter — which is exactly what the routing ablation
//! measures.

use crate::dist::Metric;
use crate::euler::euler_circuit;
use crate::matching::greedy_min_matching;
use crate::matrix::DistMatrix;
use crate::mst::Edge;
use crate::tour::Tour;

/// Builds a closed tour over the vertex set of `tree` (a spanning tree of
/// that set, edges in host-graph ids), starting at `start`, by
/// MST + odd-vertex matching + Euler short-cutting.
///
/// `n` is the host graph's node count (for adjacency sizing). The tree may
/// be a single vertex (`tree` empty) — the result is then the singleton
/// tour of `start`.
pub fn tour_from_tree_matched<M: Metric>(dist: &M, n: usize, tree: &[Edge], start: usize) -> Tour {
    if tree.is_empty() {
        return Tour::singleton(start);
    }

    // Odd-degree vertices of the tree.
    let mut degree = vec![0usize; n];
    for &(u, v) in tree {
        degree[u] += 1;
        degree[v] += 1;
    }
    let odd: Vec<usize> = (0..n).filter(|&v| degree[v] % 2 == 1).collect();
    debug_assert!(odd.len().is_multiple_of(2), "handshake lemma");

    let mut edges: Vec<Edge> = tree.to_vec();
    edges.extend(greedy_min_matching(dist, &odd));

    let circuit =
        euler_circuit(n, &edges, start).expect("tree + odd matching is connected and even-degree");
    Tour::shortcut(&circuit)
}

/// Christofides-style TSP over all nodes of `dist`, starting at `start`.
pub fn christofides(dist: &DistMatrix, start: usize) -> Tour {
    let n = dist.len();
    if n <= 1 {
        return if n == 0 { Tour::new(vec![]) } else { Tour::singleton(start) };
    }
    let mst = crate::mst::prim(dist);
    tour_from_tree_matched(dist, n, &mst, start)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mst::{prim, tree_weight};
    use crate::tsp_exact::held_karp;
    use perpetuum_geom::Point2;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<Point2> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point2::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0)))
            .collect()
    }

    #[test]
    fn trivial_sizes() {
        assert_eq!(christofides(&DistMatrix::zeros(0), 0).len(), 0);
        assert_eq!(christofides(&DistMatrix::zeros(1), 0).nodes(), &[0]);
        let d = DistMatrix::from_points(&[Point2::new(0.0, 0.0), Point2::new(3.0, 4.0)]);
        let t = christofides(&d, 0);
        assert_eq!(t.length(&d), 10.0);
    }

    #[test]
    fn visits_every_node_once_from_start() {
        for seed in 0..5u64 {
            let d = DistMatrix::from_points(&random_points(20, seed));
            let t = christofides(&d, 3);
            assert_eq!(t.start(), Some(3));
            let mut nodes: Vec<usize> = t.nodes().to_vec();
            nodes.sort_unstable();
            assert_eq!(nodes, (0..20).collect::<Vec<_>>());
        }
    }

    #[test]
    fn never_worse_than_twice_mst() {
        // Even with a greedy matching, MST + matching ≤ MST + MST, so the
        // shortcut tour stays within the doubling bound.
        for seed in 10..16u64 {
            let d = DistMatrix::from_points(&random_points(25, seed));
            let mst = prim(&d);
            let w = tree_weight(&d, &mst);
            let t = christofides(&d, 0);
            assert!(t.length(&d) <= 2.0 * w + 1e-6, "seed {seed}");
        }
    }

    #[test]
    fn usually_beats_doubling() {
        // Averaged over instances, matching beats doubling clearly.
        let mut matched_total = 0.0;
        let mut doubled_total = 0.0;
        for seed in 20..30u64 {
            let d = DistMatrix::from_points(&random_points(30, seed));
            let mst = prim(&d);
            let doubled = {
                let e2 = crate::euler::double_edges(&mst);
                let c = euler_circuit(30, &e2, 0).unwrap();
                Tour::shortcut(&c).length(&d)
            };
            let matched = christofides(&d, 0).length(&d);
            matched_total += matched;
            doubled_total += doubled;
        }
        assert!(
            matched_total < doubled_total,
            "matched {matched_total} vs doubled {doubled_total}"
        );
    }

    #[test]
    fn close_to_optimal_on_small_instances() {
        for seed in 0..5u64 {
            let d = DistMatrix::from_points(&random_points(10, seed + 40));
            let (_, opt) = held_karp(&d);
            let t = christofides(&d, 0).length(&d);
            assert!(t <= 1.6 * opt + 1e-9, "seed {seed}: christofides {t} vs opt {opt}");
        }
    }

    #[test]
    fn subtree_tour_only_visits_subtree() {
        // A path 0-1-2 inside a 5-node host graph.
        let d = DistMatrix::from_points(&random_points(5, 99));
        let tree = [(0, 1), (1, 2)];
        let t = tour_from_tree_matched(&d, 5, &tree, 0);
        let mut nodes: Vec<usize> = t.nodes().to_vec();
        nodes.sort_unstable();
        assert_eq!(nodes, vec![0, 1, 2]);
    }
}
