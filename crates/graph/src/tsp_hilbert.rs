//! Hilbert space-filling-curve tour construction.
//!
//! Sort the points by their position along a Hilbert curve over the
//! bounding box and visit them in that order. `O(n log n)`, no distance
//! matrix needed, and asymptotically within a constant factor of optimal
//! for uniform points — the constructor of choice when `n` is far beyond
//! what matrix-based methods can hold. Included as a scalability
//! reference point for the routing ablation.

use crate::matrix::DistMatrix;
use crate::tour::Tour;
use perpetuum_geom::{Aabb, Point2};

/// Curve resolution: coordinates are quantised to `2^ORDER` cells per
/// axis. 16 gives a 65536² grid — far below a metre for any field this
/// workspace simulates.
const ORDER: u32 = 16;

/// Maps a cell coordinate `(x, y)` (each `< 2^ORDER`) to its index along
/// the Hilbert curve of order `ORDER` (16).
pub fn hilbert_d(mut x: u32, mut y: u32) -> u64 {
    let n: u32 = 1 << ORDER;
    let mut d: u64 = 0;
    let mut s: u32 = n / 2;
    while s > 0 {
        let rx = u32::from((x & s) > 0);
        let ry = u32::from((y & s) > 0);
        d += (s as u64) * (s as u64) * ((3 * rx) ^ ry) as u64;
        // Rotate the quadrant (standard xy2d rotation, reflecting in the
        // full n × n grid).
        if ry == 0 {
            if rx == 1 {
                x = n - 1 - x;
                y = n - 1 - y;
            }
            std::mem::swap(&mut x, &mut y);
        }
        s /= 2;
    }
    d
}

/// Hilbert index of a point within `bounds`.
fn hilbert_index(p: Point2, bounds: &Aabb) -> u64 {
    let side = (1u32 << ORDER) as f64;
    let w = bounds.width().max(f64::MIN_POSITIVE);
    let h = bounds.height().max(f64::MIN_POSITIVE);
    let x = (((p.x - bounds.min.x) / w) * (side - 1.0)).round() as u32;
    let y = (((p.y - bounds.min.y) / h) * (side - 1.0)).round() as u32;
    hilbert_d(x.min((1 << ORDER) - 1), y.min((1 << ORDER) - 1))
}

/// Closed tour over `customers` (indices into `points`) starting at
/// `start` (also an index into `points`), visiting the customers in
/// Hilbert-curve order beginning at the curve position nearest after the
/// start point.
pub fn hilbert_tour(points: &[Point2], start: usize, customers: &[usize]) -> Tour {
    if customers.is_empty() {
        return Tour::singleton(start);
    }
    let all: Vec<Point2> =
        customers.iter().map(|&c| points[c]).chain(std::iter::once(points[start])).collect();
    let bounds = Aabb::containing(&all).expect("non-empty");

    let mut keyed: Vec<(u64, usize)> =
        customers.iter().map(|&c| (hilbert_index(points[c], &bounds), c)).collect();
    keyed.sort_unstable();

    // Rotate so the tour leaves the depot toward the nearest curve
    // position ≥ the depot's own index (keeps the first hop short).
    let start_key = hilbert_index(points[start], &bounds);
    let pivot = keyed.partition_point(|&(k, _)| k < start_key);
    let mut order = Vec::with_capacity(customers.len() + 1);
    order.push(start);
    order.extend(keyed[pivot..].iter().map(|&(_, c)| c));
    order.extend(keyed[..pivot].iter().map(|&(_, c)| c));
    Tour::new(order)
}

/// [`hilbert_tour`] over all nodes of a [`DistMatrix`]-backed point set —
/// convenience for benchmarks comparing constructors.
pub fn hilbert_tour_all(points: &[Point2], start: usize) -> Tour {
    let customers: Vec<usize> = (0..points.len()).filter(|&i| i != start).collect();
    hilbert_tour(points, start, &customers)
}

/// Helper for tests: tour length via an on-the-fly matrix.
pub fn tour_length_points(points: &[Point2], tour: &Tour) -> f64 {
    let dist = DistMatrix::from_points(points);
    tour.length(&dist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::one_tree::one_tree_lower_bound;
    use crate::tsp_heur::nearest_neighbor;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<Point2> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point2::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0)))
            .collect()
    }

    #[test]
    fn hilbert_d_first_cells() {
        // Curve locality: the four unit cells at the origin are exactly
        // the first four curve positions, starting at (0,0), and
        // consecutive positions are grid neighbours.
        let cells = [(0u32, 0u32), (0, 1), (1, 1), (1, 0)];
        let mut by_d: Vec<((u32, u32), u64)> =
            cells.iter().map(|&(x, y)| ((x, y), hilbert_d(x, y))).collect();
        by_d.sort_by_key(|&(_, d)| d);
        let ds: Vec<u64> = by_d.iter().map(|&(_, d)| d).collect();
        assert_eq!(ds, vec![0, 1, 2, 3]);
        assert_eq!(by_d[0].0, (0, 0));
        for w in by_d.windows(2) {
            let (a, b) = (w[0].0, w[1].0);
            let manhattan = a.0.abs_diff(b.0) + a.1.abs_diff(b.1);
            assert_eq!(manhattan, 1, "curve jump between {a:?} and {b:?}");
        }
    }

    #[test]
    fn hilbert_is_a_bijection_on_a_small_grid() {
        // All 16x16 cells map to distinct indices in [0, 256).
        let mut seen = std::collections::HashSet::new();
        let scale = (1u32 << ORDER) / 16;
        for x in 0..16u32 {
            for y in 0..16u32 {
                let d = hilbert_d(x * scale, y * scale);
                assert!(seen.insert(d), "collision at ({x},{y})");
            }
        }
    }

    #[test]
    fn tour_covers_everything_once() {
        let pts = random_points(40, 1);
        let customers: Vec<usize> = (1..40).collect();
        let t = hilbert_tour(&pts, 0, &customers);
        assert_eq!(t.start(), Some(0));
        let mut nodes: Vec<usize> = t.nodes().to_vec();
        nodes.sort_unstable();
        assert_eq!(nodes, (0..40).collect::<Vec<_>>());
    }

    #[test]
    fn within_small_factor_of_one_tree_bound() {
        for seed in 0..5u64 {
            let pts = random_points(50, seed + 10);
            let t = hilbert_tour_all(&pts, 0);
            let len = tour_length_points(&pts, &t);
            let d = DistMatrix::from_points(&pts);
            let lb = one_tree_lower_bound(&d);
            assert!(len >= lb - 1e-9);
            assert!(len <= 2.2 * lb, "seed {seed}: hilbert {len} vs 1-tree bound {lb}");
        }
    }

    #[test]
    fn competitive_with_nearest_neighbor_on_uniform_points() {
        let mut hilbert_total = 0.0;
        let mut nn_total = 0.0;
        for seed in 20..26u64 {
            let pts = random_points(120, seed);
            let d = DistMatrix::from_points(&pts);
            hilbert_total += hilbert_tour_all(&pts, 0).length(&d);
            nn_total += nearest_neighbor(&d, 0).length(&d);
        }
        // Hilbert has no pathological last-hop like NN; on uniform points
        // they land in the same league (within 35% of each other).
        let ratio = hilbert_total / nn_total;
        assert!((0.65..=1.35).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn degenerate_inputs() {
        let pts = random_points(3, 9);
        assert_eq!(hilbert_tour(&pts, 1, &[]).nodes(), &[1]);
        let t = hilbert_tour(&pts, 0, &[2]);
        assert_eq!(t.nodes(), &[0, 2]);
        // All points identical: still a valid permutation.
        let same = vec![Point2::new(5.0, 5.0); 4];
        let t = hilbert_tour(&same, 0, &[1, 2, 3]);
        assert_eq!(t.len(), 4);
    }
}
