//! Held–Karp 1-tree lower bound for the TSP.
//!
//! A *1-tree* rooted at vertex `v`: an MST over the remaining vertices
//! plus the two cheapest edges incident to `v`. Every Hamiltonian tour is
//! a 1-tree (drop `v`'s two tour edges and the rest is a spanning tree),
//! so the maximum 1-tree weight over all roots is a valid — and usually
//! much tighter than plain MST — lower bound on the optimal tour.
//!
//! Used to certify tour quality on instances too large for
//! [`crate::tsp_exact::held_karp`].

use crate::matrix::DistMatrix;
use crate::mst::{prim, tree_weight};

/// Weight of the 1-tree rooted at `root`. Requires `n ≥ 3`.
pub fn one_tree_weight(dist: &DistMatrix, root: usize) -> f64 {
    let n = dist.len();
    assert!(n >= 3, "1-trees need at least three vertices");
    assert!(root < n);

    // MST over all vertices except `root`, via an index mapping.
    let others: Vec<usize> = (0..n).filter(|&v| v != root).collect();
    let sub = dist.induced(&others);
    let mst = prim(&sub);
    let mst_w = tree_weight(&sub, &mst);

    // Two cheapest edges at the root.
    let mut best = f64::INFINITY;
    let mut second = f64::INFINITY;
    for &v in &others {
        let d = dist.get(root, v);
        if d < best {
            second = best;
            best = d;
        } else if d < second {
            second = d;
        }
    }
    mst_w + best + second
}

/// The strongest 1-tree bound over all roots: a certified lower bound on
/// the optimal closed tour over all nodes of `dist`.
pub fn one_tree_lower_bound(dist: &DistMatrix) -> f64 {
    let n = dist.len();
    if n < 2 {
        return 0.0;
    }
    if n == 2 {
        return 2.0 * dist.get(0, 1);
    }
    (0..n).map(|root| one_tree_weight(dist, root)).fold(0.0f64, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tsp_exact::held_karp;
    use crate::tsp_heur::nearest_neighbor;
    use perpetuum_geom::Point2;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<Point2> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point2::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0)))
            .collect()
    }

    #[test]
    fn lower_bounds_exact_optimum() {
        for seed in 0..8u64 {
            let d = DistMatrix::from_points(&random_points(10, seed));
            let (_, opt) = held_karp(&d);
            let lb = one_tree_lower_bound(&d);
            assert!(lb <= opt + 1e-9, "seed {seed}: 1-tree {lb} above optimum {opt}");
            // And it is usually tight: within 15% on Euclidean instances.
            assert!(lb >= opt * 0.80, "seed {seed}: unexpectedly loose ({lb} vs {opt})");
        }
    }

    #[test]
    fn beats_plain_mst_bound() {
        for seed in 10..14u64 {
            let d = DistMatrix::from_points(&random_points(15, seed));
            let mst_w = tree_weight(&d, &prim(&d));
            let lb = one_tree_lower_bound(&d);
            assert!(lb >= mst_w - 1e-9, "1-tree can never be below the MST");
        }
    }

    #[test]
    fn square_bound_is_perimeter() {
        let d = DistMatrix::from_points(&[
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(1.0, 1.0),
            Point2::new(0.0, 1.0),
        ]);
        assert!((one_tree_lower_bound(&d) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn certifies_heuristic_tours_on_larger_instances() {
        // On instances too big for Held–Karp: NN tour ≥ 1-tree bound, and
        // the certified gap stays sane.
        let d = DistMatrix::from_points(&random_points(60, 99));
        let lb = one_tree_lower_bound(&d);
        let nn = nearest_neighbor(&d, 0).length(&d);
        assert!(nn >= lb - 1e-9);
        assert!(nn <= 2.0 * lb, "NN should be within 2x of the 1-tree bound");
    }

    #[test]
    fn trivial_sizes() {
        assert_eq!(one_tree_lower_bound(&DistMatrix::zeros(0)), 0.0);
        assert_eq!(one_tree_lower_bound(&DistMatrix::zeros(1)), 0.0);
        let d = DistMatrix::from_points(&[Point2::new(0.0, 0.0), Point2::new(3.0, 4.0)]);
        assert_eq!(one_tree_lower_bound(&d), 10.0);
    }
}
