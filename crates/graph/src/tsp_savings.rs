//! Clarke–Wright savings tour construction.
//!
//! The classic vehicle-routing constructor (Clarke & Wright, 1964): start
//! with one out-and-back route per customer and repeatedly merge the route
//! pair with the largest *saving* `s(i,j) = d(0,i) + d(0,j) − d(i,j)`
//! (joining endpoints `i`, `j` of distinct routes). In a metric space all
//! savings are non-negative, so the process ends in a single depot-rooted
//! tour — a genuinely different construction from tree doubling or
//! matching, used as a third [`Routing`](../../perpetuum_core) variant in
//! the routing ablation.

use crate::dist::Metric;
use crate::tour::Tour;

/// Builds a closed tour from `depot` over `customers` (host-graph node
/// ids, not containing the depot) by Clarke–Wright savings merging.
pub fn savings_tour<M: Metric>(dist: &M, depot: usize, customers: &[usize]) -> Tour {
    let m = customers.len();
    match m {
        0 => return Tour::singleton(depot),
        1 => return Tour::new(vec![depot, customers[0]]),
        _ => {}
    }

    // Savings for every customer pair, sorted descending.
    let mut savings: Vec<(f64, usize, usize)> = Vec::with_capacity(m * (m - 1) / 2);
    for a in 0..m {
        for b in (a + 1)..m {
            let s = dist.get(depot, customers[a]) + dist.get(depot, customers[b])
                - dist.get(customers[a], customers[b]);
            savings.push((s, a, b));
        }
    }
    savings.sort_by(|x, y| y.0.partial_cmp(&x.0).expect("distances are not NaN"));

    // Route bookkeeping: each customer starts alone. route_of[c] = route id;
    // routes[id] = deque-ish Vec of customer indices; endpoints merge.
    let mut route_of: Vec<usize> = (0..m).collect();
    let mut routes: Vec<Option<Vec<usize>>> = (0..m).map(|c| Some(vec![c])).collect();

    let is_endpoint = |routes: &Vec<Option<Vec<usize>>>, rid: usize, c: usize| {
        let r = routes[rid].as_ref().expect("live route");
        r[0] == c || r[r.len() - 1] == c
    };

    for (s, a, b) in savings {
        if s <= 0.0 {
            break; // metric ⇒ the rest are zero too; concatenation handles them
        }
        let (ra, rb) = (route_of[a], route_of[b]);
        if ra == rb || !is_endpoint(&routes, ra, a) || !is_endpoint(&routes, rb, b) {
            continue;
        }
        // Orient both routes so `a` is the tail of ra and `b` the head of rb.
        let mut left = routes[ra].take().expect("live route");
        let mut right = routes[rb].take().expect("live route");
        if left[0] == a {
            left.reverse();
        }
        if right[right.len() - 1] == b {
            right.reverse();
        }
        debug_assert_eq!(*left.last().unwrap(), a);
        debug_assert_eq!(right[0], b);
        for &c in &right {
            route_of[c] = ra;
        }
        left.extend_from_slice(&right);
        routes[ra] = Some(left);
    }

    // Concatenate any remaining routes through the depot (triangle
    // inequality: shortcutting intermediate depot visits never lengthens).
    let mut order = Vec::with_capacity(m + 1);
    order.push(depot);
    for r in routes.into_iter().flatten() {
        for c in r {
            order.push(customers[c]);
        }
    }
    Tour::new(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::DistMatrix;
    use crate::tsp_exact::held_karp;
    use perpetuum_geom::Point2;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<Point2> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point2::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0)))
            .collect()
    }

    #[test]
    fn trivial_sizes() {
        let d = DistMatrix::from_points(&random_points(3, 0));
        assert_eq!(savings_tour(&d, 0, &[]).nodes(), &[0]);
        assert_eq!(savings_tour(&d, 0, &[2]).nodes(), &[0, 2]);
    }

    #[test]
    fn covers_every_customer_once() {
        for seed in 0..6u64 {
            let d = DistMatrix::from_points(&random_points(25, seed));
            let customers: Vec<usize> = (1..25).collect();
            let t = savings_tour(&d, 0, &customers);
            assert_eq!(t.start(), Some(0));
            let mut nodes: Vec<usize> = t.nodes().to_vec();
            nodes.sort_unstable();
            assert_eq!(nodes, (0..25).collect::<Vec<_>>());
        }
    }

    #[test]
    fn good_on_small_instances() {
        // Savings is a strong constructor: typically within ~15% of optimal
        // on random Euclidean instances; allow 30% slack for robustness.
        for seed in 0..6u64 {
            let d = DistMatrix::from_points(&random_points(10, seed + 50));
            let customers: Vec<usize> = (1..10).collect();
            let t = savings_tour(&d, 0, &customers);
            let (_, opt) = held_karp(&d);
            let len = t.length(&d);
            assert!(len <= 1.3 * opt + 1e-9, "seed {seed}: savings {len} vs opt {opt}");
        }
    }

    #[test]
    fn line_instance_is_optimal() {
        // Depot at the centre of a line of customers: the optimal tour
        // sweeps left then right (or vice versa); savings finds it.
        let pts = vec![
            Point2::new(0.0, 0.0), // depot
            Point2::new(-30.0, 0.0),
            Point2::new(-10.0, 0.0),
            Point2::new(10.0, 0.0),
            Point2::new(20.0, 0.0),
        ];
        let d = DistMatrix::from_points(&pts);
        let t = savings_tour(&d, 0, &[1, 2, 3, 4]);
        assert!((t.length(&d) - 100.0).abs() < 1e-9, "{:?}", t.nodes());
    }

    #[test]
    fn beats_naive_star_by_construction() {
        for seed in 10..14u64 {
            let d = DistMatrix::from_points(&random_points(20, seed));
            let customers: Vec<usize> = (1..20).collect();
            let t = savings_tour(&d, 0, &customers);
            let star: f64 = customers.iter().map(|&c| 2.0 * d.get(0, c)).sum();
            assert!(t.length(&d) <= star + 1e-9);
        }
    }
}
