//! Graph machinery for the `perpetuum` workspace.
//!
//! The scheduling algorithms of the paper operate on *metric complete
//! graphs*: every pair of nodes (sensors or depots) is joined by an edge
//! weighted with their Euclidean distance. This crate implements, from
//! scratch, everything the schedulers need on such graphs:
//!
//! * [`DistMatrix`] — a flat, dense, symmetric distance matrix,
//! * [`dist`] — the [`Metric`] trait and [`DistSource`] enum: planners run
//!   against a dense matrix *or* on-demand point distances, so large
//!   instances never materialize `n²` floats,
//! * [`sparse`] — CSR k-NN graphs, binary-heap Prim in `O(m log n)` and
//!   the [`sparse::mst_knn`] escalation driver (sparse first, dense only
//!   on disconnection),
//! * [`dsu::DisjointSets`] — union–find with path halving and union by size,
//! * [`mst`] — Prim's algorithm in `O(n²)` on dense matrices (the right
//!   complexity class for complete graphs) and Kruskal on edge lists,
//! * [`euler`] — Hierholzer's algorithm for Euler circuits of multigraphs
//!   (used on doubled trees, the heart of the 2-approximation),
//! * [`tour`] — closed tours, walk short-cutting and validation,
//! * [`tsp_exact`] — Held–Karp dynamic programming for reference optima on
//!   small instances,
//! * [`tsp_heur`] — nearest-neighbour construction and 2-opt / Or-opt local
//!   search used for tour polishing ablations,
//! * [`matching`] — greedy + 2-swap minimum-weight perfect matching,
//! * [`tsp_christofides`] — MST + odd-vertex-matching tour construction
//!   (the routing ablation's alternative to tree doubling),
//! * [`tsp_savings`] — Clarke–Wright savings construction (the classic
//!   VRP route builder, a third routing variant),
//! * [`one_tree`] — Held–Karp 1-tree lower bounds for certifying tour
//!   quality beyond exact-solver reach.

pub mod dist;
pub mod dsu;
pub mod euler;
pub mod matching;
pub mod matrix;
pub mod mst;
pub mod one_tree;
pub mod sparse;
pub mod tour;
pub mod tsp_christofides;
pub mod tsp_exact;
pub mod tsp_heur;
pub mod tsp_hilbert;
pub mod tsp_savings;

pub use dist::{DistSource, Metric};
pub use dsu::DisjointSets;
pub use matrix::DistMatrix;
pub use sparse::{knn_edges, mst_knn, prim_sparse, MstStrategy, SparseGraph, SparseMst};
pub use tour::Tour;
