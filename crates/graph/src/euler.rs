//! Euler circuits of undirected multigraphs (Hierholzer's algorithm).
//!
//! Algorithm 2 of the paper doubles the edges of each depot-rooted tree; the
//! doubled tree is an Eulerian multigraph, and short-cutting its Euler
//! circuit yields the 2-approximate closed tour. Lemma 3's proof also glues
//! several closed tours through a shared depot into one Eulerian graph, so
//! the implementation here handles arbitrary connected even-degree
//! multigraphs, not just doubled trees.

/// An Euler circuit of the multigraph given by `edges` (parallel edges are
/// expressed by repeating them), starting and ending at `start`.
///
/// Returns the circuit as a node sequence `v_0 = start, v_1, …, v_m = start`
/// with one entry per traversed edge plus the final return, or `None` when
/// the graph has no Euler circuit from `start` (odd-degree node, edges
/// disconnected from `start`, or `start` isolated while edges exist).
///
/// An empty edge set yields the trivial circuit `[start]`.
pub fn euler_circuit(n: usize, edges: &[(usize, usize)], start: usize) -> Option<Vec<usize>> {
    assert!(start < n, "start node out of bounds");
    if edges.is_empty() {
        return Some(vec![start]);
    }

    // Adjacency as (neighbor, edge id); `used` marks consumed edge ids.
    let mut adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
    for (id, &(u, v)) in edges.iter().enumerate() {
        assert!(u < n && v < n, "edge endpoint out of bounds");
        adj[u].push((v, id));
        adj[v].push((u, id));
    }
    // Euler circuit requires all degrees even.
    if adj.iter().any(|a| a.len() % 2 == 1) {
        return None;
    }
    if adj[start].is_empty() {
        return None; // edges exist but none reachable from start
    }

    let mut used = vec![false; edges.len()];
    // next[v]: index into adj[v] of the next candidate edge (skip-consumed).
    let mut next = vec![0usize; n];
    let mut stack = vec![start];
    let mut circuit = Vec::with_capacity(edges.len() + 1);

    while let Some(&v) = stack.last() {
        // Advance past used edges.
        let mut advanced = false;
        while next[v] < adj[v].len() {
            let (to, id) = adj[v][next[v]];
            if used[id] {
                next[v] += 1;
            } else {
                used[id] = true;
                next[v] += 1;
                stack.push(to);
                advanced = true;
                break;
            }
        }
        if !advanced {
            circuit.push(v);
            stack.pop();
        }
    }

    // All edges must be consumed, otherwise the graph was disconnected.
    if used.iter().all(|&u| u) {
        circuit.reverse();
        Some(circuit)
    } else {
        None
    }
}

/// Doubles every edge (the multigraph used by the tree-doubling step of
/// Algorithm 2).
pub fn double_edges(edges: &[(usize, usize)]) -> Vec<(usize, usize)> {
    let mut out = Vec::with_capacity(edges.len() * 2);
    for &e in edges {
        out.push(e);
        out.push(e);
    }
    out
}

/// Validates that `circuit` is an Euler circuit of `edges` starting at
/// `start`: consecutive pairs consume each multigraph edge exactly once and
/// the walk is closed.
pub fn is_euler_circuit(edges: &[(usize, usize)], start: usize, circuit: &[usize]) -> bool {
    if edges.is_empty() {
        return circuit == [start];
    }
    if circuit.len() != edges.len() + 1
        || circuit.first() != Some(&start)
        || circuit.last() != Some(&start)
    {
        return false;
    }
    // Multiset of undirected edges.
    let canon = |u: usize, v: usize| if u <= v { (u, v) } else { (v, u) };
    let mut want: std::collections::HashMap<(usize, usize), isize> =
        std::collections::HashMap::new();
    for &(u, v) in edges {
        *want.entry(canon(u, v)).or_insert(0) += 1;
    }
    for w in circuit.windows(2) {
        let e = canon(w[0], w[1]);
        match want.get_mut(&e) {
            Some(c) if *c > 0 => *c -= 1,
            _ => return false,
        }
    }
    want.values().all(|&c| c == 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_trivial_circuit() {
        let c = euler_circuit(3, &[], 1).unwrap();
        assert_eq!(c, vec![1]);
        assert!(is_euler_circuit(&[], 1, &c));
    }

    #[test]
    fn doubled_path_has_circuit() {
        // Path 0-1-2 doubled: 0-1,0-1,1-2,1-2.
        let edges = double_edges(&[(0, 1), (1, 2)]);
        let c = euler_circuit(3, &edges, 0).unwrap();
        assert!(is_euler_circuit(&edges, 0, &c));
        assert_eq!(c.len(), 5);
    }

    #[test]
    fn doubled_star_has_circuit() {
        let tree = [(0, 1), (0, 2), (0, 3), (0, 4)];
        let edges = double_edges(&tree);
        let c = euler_circuit(5, &edges, 0).unwrap();
        assert!(is_euler_circuit(&edges, 0, &c));
    }

    #[test]
    fn circuit_from_non_root_of_doubled_tree() {
        let tree = [(0, 1), (1, 2), (2, 3)];
        let edges = double_edges(&tree);
        let c = euler_circuit(4, &edges, 2).unwrap();
        assert!(is_euler_circuit(&edges, 2, &c));
    }

    #[test]
    fn odd_degree_fails() {
        // A single edge has two odd-degree endpoints.
        assert!(euler_circuit(2, &[(0, 1)], 0).is_none());
    }

    #[test]
    fn triangle_has_circuit() {
        let edges = [(0, 1), (1, 2), (2, 0)];
        let c = euler_circuit(3, &edges, 0).unwrap();
        assert!(is_euler_circuit(&edges, 0, &c));
    }

    #[test]
    fn two_triangles_sharing_node_glue() {
        // The Lemma-3 construction: two closed tours through node 0.
        let edges = [(0, 1), (1, 2), (2, 0), (0, 3), (3, 4), (4, 0)];
        let c = euler_circuit(5, &edges, 0).unwrap();
        assert!(is_euler_circuit(&edges, 0, &c));
    }

    #[test]
    fn disconnected_edges_fail() {
        // Triangle on 0,1,2 plus a disjoint triangle on 3,4,5.
        let edges = [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)];
        assert!(euler_circuit(6, &edges, 0).is_none());
    }

    #[test]
    fn isolated_start_with_edges_fails() {
        let edges = [(1, 2), (2, 3), (3, 1)];
        assert!(euler_circuit(4, &edges, 0).is_none());
    }

    #[test]
    fn self_loops_supported() {
        // A self loop contributes 2 to the degree and is traversable.
        let edges = [(0, 0), (0, 1), (1, 0)];
        let c = euler_circuit(2, &edges, 0).unwrap();
        assert!(is_euler_circuit(&edges, 0, &c));
    }

    #[test]
    fn validator_rejects_wrong_walks() {
        let edges = [(0, 1), (1, 2), (2, 0)];
        assert!(!is_euler_circuit(&edges, 0, &[0, 1, 2])); // not closed
        assert!(!is_euler_circuit(&edges, 0, &[0, 2, 1, 0, 0])); // wrong length/edges
        assert!(!is_euler_circuit(&edges, 1, &[0, 1, 2, 0])); // wrong start
    }
}
