//! Dense symmetric distance matrices.

use perpetuum_geom::Point2;

/// A dense symmetric `n × n` distance matrix stored as a flat `Vec<f64>`.
///
/// This is the natural representation for the *metric complete graphs* the
/// paper's algorithms run on: `Θ(n²)` edges exist anyway, lookups must be
/// O(1), and a flat buffer keeps Prim's `O(n²)` inner loop cache-friendly.
#[derive(Debug, Clone, PartialEq)]
pub struct DistMatrix {
    n: usize,
    d: Vec<f64>,
}

impl DistMatrix {
    /// A matrix of `n` nodes with all distances zero.
    pub fn zeros(n: usize) -> Self {
        Self { n, d: vec![0.0; n * n] }
    }

    /// Node count above which [`DistMatrix::from_points`] fills rows on
    /// multiple threads. Below it, thread spawn/teardown costs more than
    /// the `O(n²)` fill saves.
    pub const PAR_POINTS_THRESHOLD: usize = 512;

    /// Builds the Euclidean metric closure of a point set.
    ///
    /// Above [`DistMatrix::PAR_POINTS_THRESHOLD`] nodes the rows are filled
    /// in parallel; the result is bit-identical either way (each entry is
    /// the same IEEE expression `points[i].dist(points[j])`, and
    /// `(a − b)² == (b − a)²` exactly, so row-major and triangular fills
    /// agree on every bit).
    pub fn from_points(points: &[Point2]) -> Self {
        let n = points.len();
        if n >= Self::PAR_POINTS_THRESHOLD {
            return Self::from_points_parallel(points, perpetuum_par::default_workers(n));
        }
        let mut d = vec![0.0; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let dist = points[i].dist(points[j]);
                d[i * n + j] = dist;
                d[j * n + i] = dist;
            }
        }
        Self { n, d }
    }

    /// Row-parallel [`DistMatrix::from_points`] on `workers` threads.
    /// Each worker fills whole rows, so no two threads touch the same
    /// cache line and the output is deterministic.
    pub fn from_points_parallel(points: &[Point2], workers: usize) -> Self {
        let n = points.len();
        let rows = perpetuum_par::par_map_indexed(n, workers, |i| {
            let mut row = vec![0.0; n];
            let pi = points[i];
            for (j, slot) in row.iter_mut().enumerate() {
                if j != i {
                    *slot = pi.dist(points[j]);
                }
            }
            row
        });
        let mut d = Vec::with_capacity(n * n);
        for row in rows {
            d.extend_from_slice(&row);
        }
        Self { n, d }
    }

    /// Builds a matrix from an arbitrary symmetric weight function.
    ///
    /// `f(i, j)` is only evaluated for `i < j`; the diagonal is zero.
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut d = vec![0.0; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let w = f(i, j);
                d[i * n + j] = w;
                d[j * n + i] = w;
            }
        }
        Self { n, d }
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the matrix has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Distance between nodes `i` and `j`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.n && j < self.n);
        self.d[i * self.n + j]
    }

    /// Sets the distance between `i` and `j` (kept symmetric).
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, w: f64) {
        assert!(i < self.n && j < self.n, "index out of bounds");
        self.d[i * self.n + j] = w;
        self.d[j * self.n + i] = w;
    }

    /// Row `i` as a slice — handy for tight inner loops.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.d[i * self.n..(i + 1) * self.n]
    }

    /// The sub-matrix induced by `nodes` (in the given order). Entry `(a, b)`
    /// of the result is the distance between `nodes[a]` and `nodes[b]`.
    pub fn induced(&self, nodes: &[usize]) -> DistMatrix {
        let m = nodes.len();
        let mut d = vec![0.0; m * m];
        for (a, &i) in nodes.iter().enumerate() {
            for (b, &j) in nodes.iter().enumerate() {
                d[a * m + b] = self.get(i, j);
            }
        }
        DistMatrix { n: m, d }
    }

    /// Total weight of a walk visiting `nodes` in order (open, no return).
    pub fn walk_len(&self, nodes: &[usize]) -> f64 {
        nodes.windows(2).map(|w| self.get(w[0], w[1])).sum()
    }

    /// Checks symmetry, zero diagonal, non-negativity and the triangle
    /// inequality up to tolerance `eps`. `O(n³)` — for tests only.
    pub fn is_metric(&self, eps: f64) -> bool {
        for i in 0..self.n {
            if self.get(i, i) != 0.0 {
                return false;
            }
            for j in 0..self.n {
                let dij = self.get(i, j);
                if dij < 0.0 || (dij - self.get(j, i)).abs() > eps {
                    return false;
                }
                for k in 0..self.n {
                    if dij > self.get(i, k) + self.get(k, j) + eps {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Smallest distance from `i` to any node in `targets`, with the
    /// achieving target index. `None` when `targets` is empty.
    pub fn nearest_of(&self, i: usize, targets: &[usize]) -> Option<(usize, f64)> {
        let row = self.row(i);
        let mut best: Option<(usize, f64)> = None;
        for &t in targets {
            let d = row[t];
            match best {
                Some((_, bd)) if bd <= d => {}
                _ => best = Some((t, d)),
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_from_points_is_bit_identical() {
        let pts: Vec<Point2> = (0..600)
            .map(|i| {
                let i = i as f64;
                Point2::new((i * 37.0) % 997.0, (i * i * 13.0) % 983.0)
            })
            .collect();
        // 600 ≥ PAR_POINTS_THRESHOLD, so from_points takes the parallel
        // path; rebuild sequentially and demand exact equality.
        let par = DistMatrix::from_points(&pts);
        let n = pts.len();
        let mut seq = DistMatrix::zeros(n);
        for i in 0..n {
            for j in (i + 1)..n {
                seq.set(i, j, pts[i].dist(pts[j]));
            }
        }
        assert_eq!(par, seq);
        // And explicit worker counts agree with each other.
        assert_eq!(DistMatrix::from_points_parallel(&pts, 1), par);
        assert_eq!(DistMatrix::from_points_parallel(&pts, 7), par);
    }

    fn square_points() -> Vec<Point2> {
        vec![
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(1.0, 1.0),
            Point2::new(0.0, 1.0),
        ]
    }

    #[test]
    fn from_points_symmetric_zero_diagonal() {
        let m = DistMatrix::from_points(&square_points());
        assert_eq!(m.len(), 4);
        for i in 0..4 {
            assert_eq!(m.get(i, i), 0.0);
            for j in 0..4 {
                assert_eq!(m.get(i, j), m.get(j, i));
            }
        }
        assert_eq!(m.get(0, 1), 1.0);
        assert!((m.get(0, 2) - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn euclidean_matrix_is_metric() {
        let m = DistMatrix::from_points(&square_points());
        assert!(m.is_metric(1e-9));
    }

    #[test]
    fn from_fn_and_set() {
        let mut m = DistMatrix::from_fn(3, |i, j| (i + j) as f64);
        assert_eq!(m.get(0, 1), 1.0);
        assert_eq!(m.get(1, 2), 3.0);
        m.set(0, 2, 10.0);
        assert_eq!(m.get(2, 0), 10.0);
        // A violated triangle inequality is detected.
        assert!(!m.is_metric(1e-9));
    }

    #[test]
    fn induced_submatrix() {
        let m = DistMatrix::from_points(&square_points());
        let sub = m.induced(&[0, 2]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.get(0, 1), m.get(0, 2));
    }

    #[test]
    fn induced_reorders() {
        let m = DistMatrix::from_points(&square_points());
        let sub = m.induced(&[3, 1]);
        assert_eq!(sub.get(0, 1), m.get(3, 1));
    }

    #[test]
    fn walk_len_sums_edges() {
        let m = DistMatrix::from_points(&square_points());
        assert_eq!(m.walk_len(&[0, 1, 2, 3]), 3.0);
        assert_eq!(m.walk_len(&[0]), 0.0);
        assert_eq!(m.walk_len(&[]), 0.0);
    }

    #[test]
    fn nearest_of_picks_minimum() {
        let m = DistMatrix::from_points(&square_points());
        let (t, d) = m.nearest_of(0, &[2, 1, 3]).unwrap();
        // Nodes 1 and 3 are both at distance 1; first minimum in target
        // order wins, which is node 1 here.
        assert_eq!(t, 1);
        assert_eq!(d, 1.0);
        assert!(m.nearest_of(0, &[]).is_none());
    }

    #[test]
    fn zeros_is_empty_metric() {
        let m = DistMatrix::zeros(0);
        assert!(m.is_empty());
        assert!(m.is_metric(0.0));
    }
}
