//! Criterion benchmark crate for perpetuum (benches live in `benches/`).
