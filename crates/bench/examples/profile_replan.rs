//! Ad-hoc profiling harness: where does one adaptive-mode replan spend
//! its time at n = 10_000? Run with
//! `cargo run --release -p perpetuum-bench --example profile_replan`.

use perpetuum_core::network::Network;
use perpetuum_core::var::{replan_variable_with, RepairStrategy, VarInput};
use perpetuum_energy::CycleDistribution;
use perpetuum_geom::{deploy, derived_rng, Field};
use rand::Rng;
use std::time::Instant;

fn main() {
    let n = 10_000;
    let q = 5;
    let field = Field::paper_default();
    let mut rng = derived_rng(n as u64, 0);
    let sensors = deploy::uniform_deployment(field, n, &mut rng);
    let depots = deploy::place_depots(
        field,
        field.center(),
        q,
        deploy::DepotPlacement::OneAtBaseStation,
        &mut rng,
    );
    let net = Network::sparse(sensors, depots);

    // Mid-run-looking inputs: cycles in [20, 60], residuals mid-cycle.
    let dist = CycleDistribution::Linear { sigma: 2.0 };
    let means = dist.mean_all(net.sensor_positions(), field.center(), 20.0, 60.0);
    let mut rng = derived_rng(7, 3);
    let cycles: Vec<f64> =
        means.iter().map(|&m| (m + rng.gen_range(-2.0..2.0)).clamp(20.0, 60.0)).collect();
    let residuals: Vec<f64> = cycles.iter().map(|&c| rng.gen_range(0.2 * c..c)).collect();

    for round in 0..3 {
        let input = VarInput {
            network: &net,
            max_cycles: &cycles,
            residuals: &residuals,
            now: 42.0,
            horizon: 200.0,
            polish_rounds: 0,
        };
        let t0 = Instant::now();
        let plan = replan_variable_with(&input, RepairStrategy::NearestScheduling);
        eprintln!(
            "round {round}: full replan {:?} ({} sets, {} dispatches)",
            t0.elapsed(),
            plan.series.sets().len(),
            plan.series.dispatch_count()
        );
    }

    // Phase cost estimates: cumulative-set routing vs the V^a repair.
    use perpetuum_core::qtsp::q_rooted_tsp_src;
    use perpetuum_core::rounding::partition_cycles;
    let partition = partition_cycles(&cycles);
    let k_max = partition.k_max();
    eprintln!("tau1 = {}, k_max = {k_max}", partition.tau1);
    let depot_nodes = net.depot_nodes();
    let src = net.dist_source();
    for k in 0..=k_max {
        let cum = partition.cumulative(k);
        let nodes: Vec<usize> = cum.clone();
        let t0 = Instant::now();
        let qt = q_rooted_tsp_src(&src, &nodes, &depot_nodes, 0);
        eprintln!("route D_{k} (|{}|): {:?} (cost {:.1})", cum.len(), t0.elapsed(), qt.cost);
    }
    let urgent = residuals.iter().filter(|&&r| r < partition.tau1).count();
    let va = (0..n).filter(|&i| residuals[i] + 1e-12 < partition.rounded[i]).count();
    eprintln!("V^a size = {va}, urgent = {urgent}");
}
