//! Minimal ingest client for smoke-testing a running `perpetuum-serve`
//! daemon: creates a handful of sessions over the JSON API, streams a
//! binary `/telemetry/batch` request covering all of them, decodes the
//! binary per-frame reports, and fetches one plan in each encoding.
//!
//! ```text
//! perpetuum-serve --addr 127.0.0.1:9470 --shards 8 &
//! cargo run -p perpetuum-bench --example ingest_client -- 127.0.0.1:9470 100
//! ```
//!
//! Exits non-zero (via panic) on any protocol violation, so CI can use
//! it as a end-to-end gate on the batch + binary ingest path.

use perpetuum_online::TelemetryBatch;
use perpetuum_serve::wire::{self, Frame};
use std::io::{Read as _, Write as _};
use std::net::{Shutdown, TcpStream};

fn request(addr: &str, head: String, body: &[u8]) -> (u16, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(head.as_bytes()).expect("head");
    stream.write_all(body).expect("body");
    stream.shutdown(Shutdown::Write).expect("half-close");
    let mut out = Vec::new();
    stream.read_to_end(&mut out).expect("response");
    let line_end = out.windows(2).position(|w| w == b"\r\n").expect("status line");
    let status: u16 = std::str::from_utf8(&out[..line_end])
        .ok()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .expect("parsable status");
    let split = out.windows(4).position(|w| w == b"\r\n\r\n").expect("header terminator");
    (status, out.split_off(split + 4))
}

fn post(addr: &str, path: &str, content_type: &str, accept: &str, body: &[u8]) -> (u16, Vec<u8>) {
    let head = format!(
        "POST {path} HTTP/1.1\r\nhost: ingest-client\r\ncontent-type: {content_type}\r\n\
         accept: {accept}\r\ncontent-length: {}\r\n\r\n",
        body.len()
    );
    request(addr, head, body)
}

fn get(addr: &str, path: &str, accept: &str) -> (u16, Vec<u8>) {
    let head = format!("GET {path} HTTP/1.1\r\nhost: ingest-client\r\naccept: {accept}\r\n\r\n");
    request(addr, head, &[])
}

fn create_session(addr: &str, seed: u64) -> u64 {
    let body = format!(
        r#"{{"scenario": {{
            "field_size": 500.0, "n": 8, "q": 2,
            "tau_min": 1.0, "tau_max": 20.0,
            "dist": {{ "Linear": {{ "sigma": 2.0 }} }},
            "horizon": 60.0, "slot": 10.0,
            "variable": false, "deployment": "Uniform"
        }}, "seed": {seed}}}"#
    );
    let (status, resp) = post(addr, "/session", "application/json", "*/*", body.as_bytes());
    assert_eq!(status, 200, "session create failed: {}", String::from_utf8_lossy(&resp));
    let text = String::from_utf8(resp).expect("utf8 response");
    let v = serde_json::parse_value(&text).expect("json response");
    match v.get("session") {
        Some(serde_json::Value::Num(n)) => *n as u64,
        other => panic!("no session id in response: {other:?}"),
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let addr = args.next().unwrap_or_else(|| "127.0.0.1:9470".to_string());
    let sessions: usize = args.next().map(|s| s.parse().expect("session count")).unwrap_or(100);

    let ids: Vec<u64> = (0..sessions as u64).map(|i| create_session(&addr, 1000 + i)).collect();
    println!("created {} sessions", ids.len());

    // One binary batch covering every session, plus one frame addressed
    // to a session that does not exist — its rejection must arrive in
    // place without disturbing the others.
    let mut frames: Vec<Frame> =
        ids.iter().map(|&session| Frame::telemetry(session, TelemetryBatch::tick(1.0))).collect();
    frames.push(Frame::telemetry(u64::MAX, TelemetryBatch::tick(1.0)));

    let body = wire::encode_frames(&frames);
    let (status, resp) =
        post(&addr, "/telemetry/batch", wire::CONTENT_TYPE, wire::CONTENT_TYPE, &body);
    assert_eq!(status, 200, "batch ingest failed");
    let outcomes = wire::decode_reports(&resp).expect("binary reports decode");
    assert_eq!(outcomes.len(), frames.len(), "one outcome per frame");
    let errors = outcomes.iter().filter(|o| o.result.is_err()).count();
    assert_eq!(errors, 1, "exactly the unknown-session frame fails");
    assert!(outcomes.last().expect("outcomes").result.is_err(), "rejection stays in place");
    for (frame, outcome) in frames.iter().zip(&outcomes) {
        assert_eq!(frame.session, outcome.session, "outcomes preserve request order");
    }
    println!(
        "batch of {} frames applied ({} wire bytes, {} rejected)",
        frames.len(),
        body.len(),
        errors
    );

    // The same plan must be available in both encodings.
    let probe = ids[0];
    let (status, json_plan) = get(&addr, &format!("/session/{probe}/plan"), "application/json");
    assert_eq!(status, 200, "JSON plan fetch failed");
    let (status, wire_plan) = get(&addr, &format!("/session/{probe}/plan"), wire::CONTENT_TYPE);
    assert_eq!(status, 200, "binary plan fetch failed");
    let plan = wire::PlanWire::decode(&wire_plan).expect("binary plan decodes");
    assert!(
        wire_plan.len() < json_plan.len(),
        "binary plan ({} B) should undercut JSON ({} B)",
        wire_plan.len(),
        json_plan.len()
    );
    println!(
        "plan for session {probe}: revision {}, {} assigned cycles, binary {} B vs JSON {} B",
        plan.revision,
        plan.assigned.len(),
        wire_plan.len(),
        json_plan.len()
    );
    println!("ingest-client OK");
}
