//! Regenerates the README refinement table: service cost vs step budget
//! at large scale, refined through the sparse pipeline (no dense matrix).
//!
//! ```text
//! cargo run --release -p perpetuum-bench --example refine_table
//! ```

use perpetuum_core::mtd::{plan_min_total_distance, MtdConfig};
use perpetuum_core::network::Instance;
use perpetuum_core::refine::{refine, Budget};
use perpetuum_exp::Scenario;
use std::time::Instant;

const BUDGETS: [u64; 3] = [100_000, 400_000, 1_600_000];
const SEED: u64 = 7;

fn main() {
    println!("| `n` | constructive | 100k steps | 400k steps | 1.6M steps | best cut | refine time (1.6M) |");
    println!("|---:|---:|---:|---:|---:|---:|---:|");
    for n in [2_000usize, 10_000] {
        let s = Scenario { n, ..Scenario::paper_fixed() };
        let topo = s.build_topology(42, 0);
        let instance = Instance::new(topo.network, topo.init_cycles, s.horizon);
        let plan = plan_min_total_distance(&instance, &MtdConfig::default());
        let constructive = plan.service_cost();
        let mut cells = Vec::new();
        let mut last = (constructive, 0.0f64);
        for &steps in &BUDGETS {
            let t = Instant::now();
            let (_, report) = refine(instance.network(), &plan, &Budget::steps(steps), SEED);
            let secs = t.elapsed().as_secs_f64();
            assert!(report.refined_cost <= constructive, "anytime contract violated");
            cells.push(format!("{:.0}", report.refined_cost));
            last = (report.refined_cost, secs);
        }
        println!(
            "| {n} | {constructive:.0} | {} | **-{:.1}%** | {:.0} ms |",
            cells.join(" | "),
            (1.0 - last.0 / constructive) * 100.0,
            last.1 * 1e3
        );
    }
}
