//! Planning-pipeline scaling: dense matrix vs sparse k-NN pipeline.
//!
//! The numbers behind `BENCH_planner.json` and the README scaling table.
//! `end_to_end` includes network construction (for the dense variant that
//! is the `Θ((n+q)²)` matrix build — part of the cost a caller actually
//! pays), then Algorithm 1 + Algorithm 2 over all sensors.
//!
//! At `n = 10_000` only the sparse pipeline runs: the dense matrix alone
//! would be ~800 MB, which is exactly what the sparse path exists to avoid
//! (the setup asserts no matrix is materialized).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use perpetuum_core::network::Network;
use perpetuum_core::qtsp::q_rooted_tsp_src;
use perpetuum_geom::Point2;
use perpetuum_geom::{deploy, derived_rng, Field};
use std::hint::black_box;

const Q: usize = 5;

fn deployment(n: usize, seed: u64) -> (Vec<Point2>, Vec<Point2>) {
    let field = Field::paper_default();
    let mut rng = derived_rng(seed, 0);
    let sensors = deploy::uniform_deployment(field, n, &mut rng);
    let depots = deploy::place_depots(
        field,
        field.center(),
        Q,
        deploy::DepotPlacement::OneAtBaseStation,
        &mut rng,
    );
    (sensors, depots)
}

fn plan(network: &Network) -> f64 {
    let terminals: Vec<usize> = (0..network.n()).collect();
    let roots = network.depot_nodes();
    q_rooted_tsp_src(&network.dist_source(), &terminals, &roots, 0).cost
}

fn bench_planner(c: &mut Criterion) {
    let mut group = c.benchmark_group("planner");
    group.sample_size(10);

    for &n in &[500usize, 2000] {
        let (sensors, depots) = deployment(n, n as u64);
        group.bench_with_input(BenchmarkId::new("dense_end_to_end", n), &n, |b, _| {
            b.iter(|| {
                let net = Network::new(sensors.clone(), depots.clone());
                black_box(plan(&net))
            })
        });
        group.bench_with_input(BenchmarkId::new("sparse_end_to_end", n), &n, |b, _| {
            b.iter(|| {
                let net = Network::sparse(sensors.clone(), depots.clone());
                black_box(plan(&net))
            })
        });
    }

    // n = 10_000: sparse only — the whole point is never touching the
    // dense n² matrix at this scale.
    let n = 10_000usize;
    let (sensors, depots) = deployment(n, n as u64);
    let probe = Network::sparse(sensors.clone(), depots.clone());
    assert!(!probe.has_dense_matrix(), "sparse pipeline must not materialize the dense matrix");
    group.bench_with_input(BenchmarkId::new("sparse_end_to_end", n), &n, |b, _| {
        b.iter(|| {
            let net = Network::sparse(sensors.clone(), depots.clone());
            black_box(plan(&net))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_planner);
criterion_main!(benches);
