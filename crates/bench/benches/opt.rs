//! Anytime refinement vs the Algorithm-2 constructive baseline.
//!
//! The numbers behind `BENCH_opt.json` and the README refinement table.
//! For each Section VII network size the setup plans constructively
//! (`plan_min_total_distance`, the 2-approximation), refines under a
//! sweep of step budgets, and *asserts* the tentpole claims before any
//! timing runs — so regenerating the file re-proves them instead of
//! silently shipping stale numbers:
//!
//! * refined service cost ≤ constructive at **every** budget (zero
//!   budget is an exact copy), and monotone non-increasing in budget;
//! * strict improvement of at least 5% at the reference budget;
//! * byte-identical refined schedules across repeated runs with the
//!   same seed (serde-serialized and compared).
//!
//! The achieved improvement percentage at the reference budget is baked
//! into each benchmark id (`refine/imp_12.3pct/200`), so the committed
//! JSON records the outcome comparison alongside the timings.
//!
//! `plan_cold_{off,background}/200` times the serve `/plan` handler
//! in-process with distinct scenarios per request. Background mode must
//! not block the hot path: it renders and caches the constructive plan,
//! then only *enqueues* a refinement job — the setup asserts its median
//! cold-plan latency stays within 2× of `refine=off`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use perpetuum_core::mtd::{plan_min_total_distance, MtdConfig};
use perpetuum_core::network::Instance;
use perpetuum_core::refine::{refine, Budget};
use perpetuum_core::schedule::ScheduleSeries;
use perpetuum_exp::Scenario;
use perpetuum_serve::handlers;
use perpetuum_serve::AppState;
use std::cell::Cell;
use std::hint::black_box;
use std::time::Instant;

/// Section VII network sizes exercised by the refinement grid.
const SIZES: [usize; 3] = [50, 100, 200];
/// Step budgets swept per size (0 is prepended as the exact-copy floor).
const BUDGETS: [u64; 3] = [50_000, 150_000, 400_000];
/// The budget at which the ≥5% improvement claim is asserted.
const REFERENCE_BUDGET: u64 = 400_000;
/// Refinement seed shared by every run (determinism is asserted on it).
const SEED: u64 = 7;

fn section7_instance(n: usize) -> Instance {
    let s = Scenario { n, ..Scenario::paper_fixed() };
    let topo = s.build_topology(42, 0);
    Instance::new(topo.network, topo.init_cycles, s.horizon)
}

/// Refined cost at each budget, asserting the anytime contract.
fn refinement_curve(instance: &Instance, plan: &ScheduleSeries) -> Vec<(u64, f64)> {
    let constructive = plan.service_cost();
    let mut curve = vec![(0u64, constructive)];
    let (copy, zero) = refine(instance.network(), plan, &Budget::steps(0), SEED);
    assert_eq!(zero.refined_cost, constructive, "zero budget must be an exact copy");
    assert_eq!(
        serde_json::to_string(&copy).expect("serialize"),
        serde_json::to_string(plan).expect("serialize"),
        "zero-budget refinement must not rewrite the schedule"
    );
    for &steps in &BUDGETS {
        let (_, report) = refine(instance.network(), plan, &Budget::steps(steps), SEED);
        assert!(
            report.refined_cost <= constructive + 1e-9,
            "refined ({}) must never exceed constructive ({constructive}) at {steps} steps",
            report.refined_cost
        );
        let (_, prev) = curve[curve.len() - 1];
        assert!(
            report.refined_cost <= prev + 1e-9,
            "cost must be monotone in budget: {} steps gave {}, smaller budget gave {prev}",
            steps,
            report.refined_cost
        );
        curve.push((steps, report.refined_cost));
    }
    curve
}

fn plan_body(n: usize, index: u64, refine_mode: Option<&str>) -> String {
    let knob = refine_mode.map(|m| format!(r#", "refine": "{m}""#)).unwrap_or_default();
    format!(
        r#"{{"scenario": {{
            "field_size": 1000.0, "n": {n}, "q": 5,
            "tau_min": 1.0, "tau_max": 50.0,
            "dist": {{ "Linear": {{ "sigma": 2.0 }} }},
            "horizon": 1000.0, "slot": 10.0,
            "variable": false, "deployment": "Uniform"
        }}, "seed": 42, "index": {index}, "sparse": false{knob}}}"#
    )
}

/// Median wall time of `reps` cold `/plan` requests in the given mode.
fn median_cold_plan(state: &AppState, n: usize, mode: Option<&str>, reps: usize) -> f64 {
    let mut times: Vec<f64> = (0..reps)
        .map(|i| {
            let body = plan_body(n, 1_000 + i as u64, mode);
            let t = Instant::now();
            let resp = handlers::plan(state, body.as_bytes());
            assert_eq!(resp.status, 200, "cold plan must succeed");
            t.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    times[times.len() / 2]
}

fn bench_opt(c: &mut Criterion) {
    let mut group = c.benchmark_group("opt");
    group.sample_size(10);

    for &n in &SIZES {
        let instance = section7_instance(n);
        let plan = plan_min_total_distance(&instance, &MtdConfig::default());
        let curve = refinement_curve(&instance, &plan);
        let constructive = curve[0].1;
        let at_reference = curve
            .iter()
            .find(|(b, _)| *b == REFERENCE_BUDGET)
            .expect("reference budget is in the sweep")
            .1;
        let improvement = 1.0 - at_reference / constructive;
        assert!(
            improvement >= 0.05,
            "reference budget must cut ≥5% of the constructive cost at n={n}, got {:.2}%",
            improvement * 100.0
        );

        // Determinism: the refined schedule is byte-identical across runs.
        let budget = Budget::steps(REFERENCE_BUDGET);
        let (first, _) = refine(instance.network(), &plan, &budget, SEED);
        let (second, _) = refine(instance.network(), &plan, &budget, SEED);
        assert_eq!(
            serde_json::to_string(&first).expect("serialize"),
            serde_json::to_string(&second).expect("serialize"),
            "same seed and budget must reproduce the schedule byte-for-byte at n={n}"
        );

        group.bench_with_input(BenchmarkId::new("constructive", n), &n, |b, _| {
            b.iter(|| black_box(plan_min_total_distance(&instance, &MtdConfig::default())))
        });
        group.bench_with_input(
            BenchmarkId::new(format!("refine/imp_{:.1}pct", improvement * 100.0), n),
            &n,
            |b, _| b.iter(|| black_box(refine(instance.network(), &plan, &budget, SEED))),
        );
    }

    // Hot-path guard: background mode only enqueues after responding, so
    // a cold `/plan` must cost about the same as with refinement off.
    let n = *SIZES.last().expect("non-empty grid");
    let state = AppState::new(4096);
    let off = median_cold_plan(&state, n, None, 9);
    let background = median_cold_plan(&state, n, Some("background"), 9);
    assert!(
        background <= off * 2.0,
        "background refine must not block the /plan hot path: \
         median {background:.4}s vs off {off:.4}s"
    );

    let index = Cell::new(10_000u64);
    group.bench_with_input(BenchmarkId::new("plan_cold_off", n), &n, |b, _| {
        b.iter(|| {
            index.set(index.get() + 1);
            let body = plan_body(n, index.get(), None);
            black_box(handlers::plan(&state, body.as_bytes()))
        })
    });
    group.bench_with_input(BenchmarkId::new("plan_cold_background", n), &n, |b, _| {
        b.iter(|| {
            index.set(index.get() + 1);
            let body = plan_body(n, index.get(), Some("background"));
            black_box(handlers::plan(&state, body.as_bytes()))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_opt);
criterion_main!(benches);
