//! Micro-benchmarks of the algorithmic building blocks: how Algorithms 1–3
//! and the replanner scale with `n` and `q`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use perpetuum_core::mtd::{plan_min_total_distance, MtdConfig};
use perpetuum_core::network::{Instance, Network};
use perpetuum_core::qmsf::q_rooted_msf;
use perpetuum_core::qtsp::q_rooted_tsp;
use perpetuum_core::rounding::partition_cycles;
use perpetuum_core::var::{replan_variable, VarInput};
use perpetuum_geom::{deploy, derived_rng, Field};
use perpetuum_graph::mst::prim;
use perpetuum_graph::tsp_exact::held_karp;
use perpetuum_graph::DistMatrix;
use rand::Rng;
use std::hint::black_box;

fn build_network(n: usize, q: usize, seed: u64) -> Network {
    let field = Field::paper_default();
    let mut rng = derived_rng(seed, 0);
    let sensors = deploy::uniform_deployment(field, n, &mut rng);
    let depots = deploy::place_depots(
        field,
        field.center(),
        q,
        deploy::DepotPlacement::OneAtBaseStation,
        &mut rng,
    );
    Network::new(sensors, depots)
}

fn random_cycles(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = derived_rng(seed, 1);
    (0..n).map(|_| rng.gen_range(1.0..50.0)).collect()
}

fn bench_qmsf_qtsp(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm_1_and_2");
    for &n in &[50usize, 200, 500] {
        let network = build_network(n, 5, n as u64);
        let terminals: Vec<usize> = (0..n).collect();
        let roots = network.depot_nodes();
        group.bench_with_input(BenchmarkId::new("q_rooted_msf", n), &n, |b, _| {
            b.iter(|| black_box(q_rooted_msf(network.dist(), &terminals, &roots)))
        });
        group.bench_with_input(BenchmarkId::new("q_rooted_tsp", n), &n, |b, _| {
            b.iter(|| black_box(q_rooted_tsp(network.dist(), &terminals, &roots, 0)))
        });
        group.bench_with_input(BenchmarkId::new("q_rooted_tsp_polished", n), &n, |b, _| {
            b.iter(|| black_box(q_rooted_tsp(network.dist(), &terminals, &roots, 5)))
        });
    }
    // q scaling at fixed n.
    for &q in &[1usize, 5, 10] {
        let network = build_network(200, q, 1000 + q as u64);
        let terminals: Vec<usize> = (0..200).collect();
        let roots = network.depot_nodes();
        group.bench_with_input(BenchmarkId::new("q_rooted_tsp_q", q), &q, |b, _| {
            b.iter(|| black_box(q_rooted_tsp(network.dist(), &terminals, &roots, 0)))
        });
    }
    group.finish();
}

fn bench_schedule_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm_3");
    group.sample_size(20);
    for &n in &[100usize, 300, 500] {
        let network = build_network(n, 5, 7 + n as u64);
        let cycles = random_cycles(n, n as u64);
        let instance = Instance::new(network, cycles, 1000.0);
        group.bench_with_input(BenchmarkId::new("plan_min_total_distance", n), &n, |b, _| {
            b.iter(|| black_box(plan_min_total_distance(&instance, &MtdConfig::default())))
        });
    }
    group.finish();
}

fn bench_replan(c: &mut Criterion) {
    let mut group = c.benchmark_group("var_replan");
    group.sample_size(20);
    for &n in &[100usize, 300] {
        let network = build_network(n, 5, 31 + n as u64);
        let cycles = random_cycles(n, 77 + n as u64);
        let mut rng = derived_rng(5, n as u64);
        let residuals: Vec<f64> = cycles.iter().map(|&c| rng.gen_range(0.1..=c)).collect();
        group.bench_with_input(BenchmarkId::new("replan_variable", n), &n, |b, _| {
            b.iter(|| {
                let input = VarInput {
                    network: &network,
                    max_cycles: &cycles,
                    residuals: &residuals,
                    now: 500.0,
                    horizon: 1000.0,
                    polish_rounds: 0,
                };
                black_box(replan_variable(&input))
            })
        });
    }
    group.finish();
}

fn bench_constructors(c: &mut Criterion) {
    use perpetuum_graph::tsp_christofides::christofides;
    use perpetuum_graph::tsp_heur::nearest_neighbor;
    use perpetuum_graph::tsp_hilbert::hilbert_tour_all;
    use perpetuum_graph::tsp_savings::savings_tour;

    let mut group = c.benchmark_group("tsp_constructors");
    for &n in &[100usize, 400] {
        let field = Field::paper_default();
        let pts = deploy::uniform_deployment(field, n, &mut derived_rng(9, n as u64));
        let dist = DistMatrix::from_points(&pts);
        let customers: Vec<usize> = (1..n).collect();
        group.bench_with_input(BenchmarkId::new("nearest_neighbor", n), &n, |b, _| {
            b.iter(|| black_box(nearest_neighbor(&dist, 0)))
        });
        group.bench_with_input(BenchmarkId::new("christofides", n), &n, |b, _| {
            b.iter(|| black_box(christofides(&dist, 0)))
        });
        group.bench_with_input(BenchmarkId::new("savings", n), &n, |b, _| {
            b.iter(|| black_box(savings_tour(&dist, 0, &customers)))
        });
        group.bench_with_input(BenchmarkId::new("hilbert", n), &n, |b, _| {
            b.iter(|| black_box(hilbert_tour_all(&pts, 0)))
        });
    }
    group.finish();
}

fn bench_substrate(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate");
    // Prim on dense matrices.
    for &n in &[100usize, 500] {
        let network = build_network(n, 1, 400 + n as u64);
        group.bench_with_input(BenchmarkId::new("prim_dense", n), &n, |b, _| {
            b.iter(|| black_box(prim(network.dist())))
        });
    }
    // Cycle partitioning.
    let cycles = random_cycles(500, 9);
    group.bench_function("partition_cycles_500", |b| {
        b.iter(|| black_box(partition_cycles(&cycles)))
    });
    // Exact TSP reference.
    let pts = deploy::uniform_deployment(Field::paper_default(), 13, &mut derived_rng(3, 3));
    let dist = DistMatrix::from_points(&pts);
    group.bench_function("held_karp_13", |b| b.iter(|| black_box(held_karp(&dist))));
    group.finish();
}

criterion_group!(
    benches,
    bench_qmsf_qtsp,
    bench_schedule_build,
    bench_replan,
    bench_constructors,
    bench_substrate
);
criterion_main!(benches);
