//! Closed-loop controller benchmarks: the drift scenario behind
//! `BENCH_online.json`.
//!
//! Three arms over the *same* paper-scale world, seed and compounding
//! 1.5%/slot rate drift:
//!
//! * `drift_static/deaths_*` — open-loop Algorithm 3, planned once from
//!   the initial estimates and never updated;
//! * `drift_online/deaths_*` — the telemetry-driven
//!   [`perpetuum_online::OnlineController`] (EWMA estimates, class-change
//!   triggered incremental replans, emergency dispatch queue);
//! * `drift_oracle/deaths_*` — a full replan from true measured rates at
//!   every slot boundary, the death-count floor.
//!
//! The death count of each arm is baked into its benchmark id, so the
//! committed JSON records the *outcome* comparison alongside the timings,
//! and the setup asserts the acceptance ordering — strictly fewer deaths
//! for the closed loop than the open loop, oracle at or below both — so a
//! regression fails the generation instead of silently shipping a stale
//! claim.
//!
//! `ingest_stable/<n>` times the controller's hot path: one full-network
//! telemetry batch that changes no rounding class, which must cost zero
//! planner invocations (asserted before timing).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use perpetuum_exp::Scenario;
use perpetuum_online::{OnlineConfig, OnlineController, TelemetryBatch, TelemetryRecord};
use perpetuum_sim::{
    compare_under_drift, run_with_faults, FaultModel, MtdPolicy, OnlinePolicy, OraclePolicy,
    RateShock, SimConfig,
};
use std::hint::black_box;

/// Per-slot compounding drift factor — the strongest point of the
/// `ext_drift` sweep, where the open-loop plan visibly starves sensors.
const DRIFT: f64 = 0.015;

fn bench_online(c: &mut Criterion) {
    let s = Scenario { n: 60, horizon: 300.0, ..Scenario::paper_fixed() };
    let topo = s.build_topology(42, 0);
    let cfg =
        SimConfig { horizon: s.horizon, slot: s.slot, seed: topo.sim_seed, charger_speed: None };
    let world = s.build_world(&topo);

    // The committed BENCH_online.json must show the closed loop strictly
    // beating the open loop under drift; fail the generation if not.
    let outcome = compare_under_drift(&world, &cfg, DRIFT);
    assert!(outcome.static_arm.deaths > 0, "drift must break the open-loop plan");
    assert!(
        outcome.online_arm.deaths < outcome.static_arm.deaths,
        "online ({}) must beat static ({})",
        outcome.online_arm.deaths,
        outcome.static_arm.deaths
    );
    assert!(
        outcome.oracle_arm.deaths <= outcome.online_arm.deaths,
        "oracle ({}) must floor online ({})",
        outcome.oracle_arm.deaths,
        outcome.online_arm.deaths
    );
    assert!(
        outcome.online_arm.planner_calls < outcome.oracle_arm.planner_calls,
        "online must plan less than the every-slot oracle"
    );

    let mut group = c.benchmark_group("online");
    group.sample_size(10);

    let faults = FaultModel::none().with_rate_shocks(RateShock::drift(DRIFT)).with_seed(cfg.seed);
    let net = topo.network.clone();

    let id = BenchmarkId::new("drift_static", format!("deaths_{}", outcome.static_arm.deaths));
    group.bench_function(id, |b| {
        b.iter(|| {
            let mut p = MtdPolicy::new(&net);
            black_box(run_with_faults(world.clone(), &cfg, &mut p, &faults))
        })
    });
    let id = BenchmarkId::new("drift_online", format!("deaths_{}", outcome.online_arm.deaths));
    group.bench_function(id, |b| {
        b.iter(|| {
            let mut p = OnlinePolicy::new(&net);
            black_box(run_with_faults(world.clone(), &cfg, &mut p, &faults))
        })
    });
    let id = BenchmarkId::new("drift_oracle", format!("deaths_{}", outcome.oracle_arm.deaths));
    group.bench_function(id, |b| {
        b.iter(|| {
            let mut p = OraclePolicy::new(&net);
            black_box(run_with_faults(world.clone(), &cfg, &mut p, &faults))
        })
    });

    // Controller hot path: a class-stable full-network batch. Rates equal
    // the initial estimates, so every EWMA stays put and no rounding class
    // moves — the ingest must cost zero planner invocations.
    let n = topo.network.n();
    let capacities = vec![1.0; n];
    let rates: Vec<f64> = topo.init_cycles.iter().map(|c| 1.0 / c).collect();
    let mut ctl = OnlineController::new(
        topo.network.clone(),
        capacities,
        rates.clone(),
        OnlineConfig::new(s.horizon),
    )
    .expect("paper-scale controller builds");
    let batch = TelemetryBatch {
        time: 1.0,
        records: (0..n).map(|i| TelemetryRecord::rate(i, rates[i])).collect(),
    };
    let before = ctl.planner_calls();
    ctl.ingest(&batch).expect("stable batch ingests");
    assert_eq!(ctl.planner_calls(), before, "class-stable batch must not invoke the planner");
    group.bench_with_input(BenchmarkId::new("ingest_stable", n), &n, |b, _| {
        b.iter(|| black_box(ctl.ingest(&batch).expect("stable batch ingests")))
    });

    group.finish();
}

criterion_group!(benches, bench_online);
criterion_main!(benches);
