//! Edge-suppression benchmarks: the traffic/throughput scenario behind
//! `BENCH_client.json`.
//!
//! Two closed-loop arms over the *same* paper-scale world, seed and
//! compounding 1.5%/slot rate drift:
//!
//! * `client/drift_streaming/*` — per-slot streaming
//!   [`perpetuum_sim::OnlinePolicy`]: one telemetry record per sensor per
//!   slot;
//! * `client/drift_suppressed/*` — the edge-suppressed
//!   [`perpetuum_sim::SuppressedPolicy`]: a [`perpetuum_client::SensorClient`]
//!   per sensor runs the drift test locally and only class-crossing slots
//!   go on the wire.
//!
//! The frames-on-wire reduction factor is baked into the suppressed arm's
//! benchmark id, and the setup asserts the acceptance claims — at least a
//! 10× frame reduction under drift with no loss of control quality — so a
//! regression fails the generation instead of silently shipping a stale
//! number.
//!
//! `client/observe/<n>` times the sensor-side hot path (one suppressed
//! observation across the fleet), and `client/ingest_stable/<n>` re-times
//! the controller's unsuppressed streaming hot path — directly comparable
//! to the `online/ingest_stable/<n>` row of `BENCH_online.json`, proving
//! the events path did not slow the telemetry path down.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use perpetuum_client::SensorClient;
use perpetuum_exp::Scenario;
use perpetuum_online::{
    EventBatch, OnlineConfig, OnlineController, TelemetryBatch, TelemetryRecord,
};
use perpetuum_sim::{
    run_with_faults, FaultModel, OnlinePolicy, RateShock, SimConfig, SuppressedPolicy,
};
use std::hint::black_box;

/// Per-slot compounding drift factor — the strongest point of the
/// `ext_drift` sweep (matches the `online` bench).
const DRIFT: f64 = 0.015;

/// Hysteresis margin for both arms. Every τ₁ undercut forces a fleet-wide
/// sync (`n` records at once), so the sync cadence bounds the reduction
/// factor: under compounding drift `d` the band refills in
/// `ln(1/(1−margin))/ln(1+d)` slots — ~7 at the default 10%, ~11 here.
/// Both arms plan against the same margin, so the comparison stays fair.
const MARGIN: f64 = 0.15;

fn bench_client(c: &mut Criterion) {
    let s = Scenario { n: 60, horizon: 300.0, ..Scenario::paper_fixed() };
    let topo = s.build_topology(42, 0);
    let cfg =
        SimConfig { horizon: s.horizon, slot: s.slot, seed: topo.sim_seed, charger_speed: None };
    let world = s.build_world(&topo);
    let faults = FaultModel::none().with_rate_shocks(RateShock::drift(DRIFT)).with_seed(cfg.seed);
    let net = topo.network.clone();

    // The committed BENCH_client.json must show the acceptance claims; fail
    // the generation if suppression ever weakens or costs control quality.
    let mut streaming_policy = OnlinePolicy::with_margin(&net, MARGIN);
    let streaming = run_with_faults(world.clone(), &cfg, &mut streaming_policy, &faults);
    let mut suppressed_policy = SuppressedPolicy::with_margin(&net, MARGIN);
    let suppressed = run_with_faults(world.clone(), &cfg, &mut suppressed_policy, &faults);
    let traffic = suppressed_policy.traffic();
    let reduction = traffic.reduction();
    assert!(
        reduction >= 10.0,
        "frames-on-wire reduction fell below 10x: {reduction:.1}x ({} of {} sent)",
        traffic.frames_sent,
        traffic.frames_observed
    );
    assert!(
        suppressed.deaths.len() <= streaming.deaths.len(),
        "suppression must not cost control quality: {} deaths vs {} streaming",
        suppressed.deaths.len(),
        streaming.deaths.len()
    );
    assert!(traffic.sync_batches >= 1, "drift must exercise the sync protocol");

    let mut group = c.benchmark_group("client");
    group.sample_size(10);

    let id = BenchmarkId::new(
        "drift_streaming",
        format!("frames_{}_deaths_{}", traffic.frames_observed, streaming.deaths.len()),
    );
    group.bench_function(id, |b| {
        b.iter(|| {
            let mut p = OnlinePolicy::with_margin(&net, MARGIN);
            black_box(run_with_faults(world.clone(), &cfg, &mut p, &faults))
        })
    });
    let id = BenchmarkId::new(
        "drift_suppressed",
        format!(
            "frames_{}_syncs_{}_reduction_{:.1}x_deaths_{}",
            traffic.frames_sent,
            traffic.sync_batches,
            reduction,
            suppressed.deaths.len()
        ),
    );
    group.bench_function(id, |b| {
        b.iter(|| {
            let mut p = SuppressedPolicy::with_margin(&net, MARGIN);
            black_box(run_with_faults(world.clone(), &cfg, &mut p, &faults))
        })
    });

    // Sensor-side hot path: one steady-rate observation per client across
    // the fleet. Every slot is in-band, so each call is a pure settle +
    // EWMA fold + drift test with no event construction.
    let n = topo.network.n();
    let rates: Vec<f64> = topo.init_cycles.iter().map(|c| 1.0 / c).collect();
    let mut ctl = OnlineController::new(
        topo.network.clone(),
        vec![1.0; n],
        rates.clone(),
        OnlineConfig::new(s.horizon),
    )
    .expect("paper-scale controller builds");
    let mut clients: Vec<SensorClient> =
        rates.iter().map(|&r| SensorClient::new(0.5, 0.0, s.horizon, 1.0, r)).collect();
    for (i, cl) in clients.iter_mut().enumerate() {
        cl.plan_update(ctl.tau1(), ctl.assigned_cycles()[i]);
    }
    let mut t = 0.5;
    group.bench_with_input(BenchmarkId::new("observe", n), &n, |b, _| {
        b.iter(|| {
            t += 1e-6;
            for (i, cl) in clients.iter_mut().enumerate() {
                black_box(cl.observe(t, rates[i]));
            }
        })
    });

    // Unsuppressed streaming hot path, unchanged from the `online` bench:
    // a class-stable full-network batch must still cost zero planner
    // invocations and the same per-batch time as before the events path
    // existed (compare against online/ingest_stable in BENCH_online.json).
    let batch = TelemetryBatch {
        time: 1.0,
        records: (0..n).map(|i| TelemetryRecord::rate(i, rates[i])).collect(),
    };
    let before = ctl.planner_calls();
    ctl.ingest(&batch).expect("stable batch ingests");
    assert_eq!(ctl.planner_calls(), before, "class-stable batch must not invoke the planner");
    group.bench_with_input(BenchmarkId::new("ingest_stable", n), &n, |b, _| {
        b.iter(|| black_box(ctl.ingest(&batch).expect("stable batch ingests")))
    });

    // Suppressed-path server cost: an empty event batch (the clock tick a
    // fully suppressed slot leaves behind) must also stay planner-free.
    let mut tick = 2.0;
    ctl.ingest_events(&EventBatch::new(tick, vec![])).expect("empty tick ingests");
    assert_eq!(ctl.planner_calls(), before, "empty event tick must not invoke the planner");
    group.bench_with_input(BenchmarkId::new("ingest_events_empty", n), &n, |b, _| {
        b.iter(|| {
            tick += 1e-6;
            black_box(ctl.ingest_events(&EventBatch::new(tick, vec![])).expect("tick ingests"))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_client);
criterion_main!(benches);
