//! Daemon-level benchmarks: `/plan` over real sockets.
//!
//! The numbers behind `BENCH_serve.json` and the README serving table:
//!
//! * `plan_cold/2000` — every request is a *distinct* n = 2000 sparse
//!   scenario (the `index` field is bumped per iteration), so each one
//!   pays the full planning pipeline;
//! * `plan_hit/2000` — the identical request repeated, so after the
//!   primer every iteration is a canonical-hash cache hit;
//! * `throughput/{1,8}_clients` — 64 cache-hit requests issued from one
//!   client thread vs. eight concurrent ones, isolating the accept →
//!   queue → worker-pool overhead from planning cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use perpetuum_serve::{start, ServerConfig, ServerHandle};
use std::cell::Cell;
use std::io::{Read as _, Write as _};
use std::net::{Shutdown, SocketAddr, TcpStream};

const N: usize = 2000;

fn daemon() -> ServerHandle {
    start(ServerConfig {
        workers: 8,
        queue_capacity: 256,
        cache_capacity: 64,
        ..ServerConfig::default()
    })
    .expect("daemon starts on an ephemeral port")
}

fn plan_body(index: u64) -> String {
    format!(
        r#"{{"scenario": {{
            "field_size": 1000.0, "n": {N}, "q": 5,
            "tau_min": 2.0, "tau_max": 40.0,
            "dist": {{ "Linear": {{ "sigma": 2.0 }} }},
            "horizon": 60.0, "slot": 10.0,
            "variable": false, "deployment": "Uniform"
        }}, "seed": 42, "index": {index}, "sparse": true}}"#
    )
}

fn post_plan(addr: SocketAddr, body: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let head =
        format!("POST /plan HTTP/1.1\r\nhost: bench\r\ncontent-length: {}\r\n\r\n", body.len());
    stream.write_all(head.as_bytes()).expect("head");
    stream.write_all(body.as_bytes()).expect("body");
    stream.shutdown(Shutdown::Write).expect("half-close");
    let mut out = String::new();
    stream.read_to_string(&mut out).expect("response");
    assert!(out.starts_with("HTTP/1.1 200"), "unexpected response: {out}");
    out
}

fn bench_serve(c: &mut Criterion) {
    let handle = daemon();
    let addr = handle.addr;

    let mut group = c.benchmark_group("serve");
    group.sample_size(10);

    // Cold: a fresh scenario each iteration (index bump changes the
    // canonical hash), so the full pipeline runs every time.
    let cold_index = Cell::new(0u64);
    group.bench_with_input(BenchmarkId::new("plan_cold", N), &N, |b, _| {
        b.iter(|| {
            let body = plan_body(1000 + cold_index.replace(cold_index.get() + 1));
            let resp = post_plan(addr, &body);
            assert!(resp.contains("\"cache_hit\":false"), "cold request must miss");
            resp.len()
        })
    });

    // Hit: identical request, primed once outside the measured loop.
    let hit_body = plan_body(0);
    let primer = post_plan(addr, &hit_body);
    assert!(primer.contains("\"cache_hit\":false"));
    group.bench_with_input(BenchmarkId::new("plan_hit", N), &N, |b, _| {
        b.iter(|| {
            let resp = post_plan(addr, &hit_body);
            assert!(resp.contains("\"cache_hit\":true"), "repeat request must hit");
            resp.len()
        })
    });

    // Throughput: 64 cache-hit requests from 1 vs. 8 client threads.
    const REQUESTS: usize = 64;
    for &clients in &[1usize, 8] {
        group.bench_with_input(
            BenchmarkId::new("throughput", format!("{clients}_clients")),
            &clients,
            |b, &clients| {
                b.iter(|| {
                    let per_client = REQUESTS / clients;
                    let threads: Vec<_> = (0..clients)
                        .map(|_| {
                            let body = hit_body.clone();
                            std::thread::spawn(move || {
                                let mut total = 0usize;
                                for _ in 0..per_client {
                                    total += post_plan(addr, &body).len();
                                }
                                total
                            })
                        })
                        .collect();
                    threads.into_iter().map(|t| t.join().expect("client thread")).sum::<usize>()
                })
            },
        );
    }
    group.finish();

    handle.shutdown();
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
