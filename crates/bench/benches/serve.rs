//! Daemon-level benchmarks: `/plan` over real sockets.
//!
//! The numbers behind `BENCH_serve.json` and the README serving table:
//!
//! * `plan_cold/2000` — every request is a *distinct* n = 2000 sparse
//!   scenario (the `index` field is bumped per iteration), so each one
//!   pays the full planning pipeline;
//! * `plan_hit/2000` — the identical request repeated, so after the
//!   primer every iteration is a canonical-hash cache hit;
//! * `throughput/{1,8}_clients` — 64 cache-hit requests issued from one
//!   client thread vs. eight concurrent ones, isolating the accept →
//!   queue → worker-pool overhead from planning cost;
//! * `ingest/churn_{sharded,mutex_map}/…` — 8 threads sweeping lookups
//!   over 10 000 live sessions with one session insert per 256 lookups,
//!   both stores at capacity: sharded [`SessionStore`] vs. the
//!   single-mutex [`MutexMapStore`] baseline. Setup *asserts* the
//!   sharded store strictly beats the mutex map — every insert pays an
//!   LRU eviction scan, over the whole map under the global mutex but
//!   over one ~625-session shard under a shard write lock — so
//!   regenerating the file re-proves the claim. Ops/sec and p50/p99
//!   latencies are measured in a setup pass and baked into the
//!   benchmark id (the JSON schema only carries ns/iter);
//! * `ingest/apply_{sharded,mutex_map}/…` — a full in-process ingest
//!   (lookup + slot lock + controller tick) of one frame per session on
//!   churn-free stores; here per-frame controller work dominates, which
//!   is the point — store overhead vanishes once sharded;
//! * `ingest/batch_e2e/…` — the same 10 000 sessions ingested over real
//!   sockets: 8 client threads each posting binary `/telemetry/batch`
//!   requests of 125 frames. Setup also asserts the binary encoding of
//!   a frame batch is less than half its JSON size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use perpetuum_core::network::Network;
use perpetuum_geom::Point2;
use perpetuum_online::ControllerSeed;
use perpetuum_online::{OnlineConfig, OnlineController, TelemetryBatch, TelemetryRecord};
use perpetuum_serve::wire::{self, Frame};
use perpetuum_serve::{
    start, FsyncPolicy, JournalSet, Metrics, MutexMapStore, ServerConfig, ServerHandle,
    SessionSlot, SessionStore,
};
use std::cell::Cell;
use std::io::{Read as _, Write as _};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

const N: usize = 2000;

fn daemon() -> ServerHandle {
    start(ServerConfig {
        workers: 8,
        queue_capacity: 256,
        cache_capacity: 64,
        ..ServerConfig::default()
    })
    .expect("daemon starts on an ephemeral port")
}

fn plan_body(index: u64) -> String {
    format!(
        r#"{{"scenario": {{
            "field_size": 1000.0, "n": {N}, "q": 5,
            "tau_min": 2.0, "tau_max": 40.0,
            "dist": {{ "Linear": {{ "sigma": 2.0 }} }},
            "horizon": 60.0, "slot": 10.0,
            "variable": false, "deployment": "Uniform"
        }}, "seed": 42, "index": {index}, "sparse": true}}"#
    )
}

fn post_plan(addr: SocketAddr, body: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let head =
        format!("POST /plan HTTP/1.1\r\nhost: bench\r\ncontent-length: {}\r\n\r\n", body.len());
    stream.write_all(head.as_bytes()).expect("head");
    stream.write_all(body.as_bytes()).expect("body");
    stream.shutdown(Shutdown::Write).expect("half-close");
    let mut out = String::new();
    stream.read_to_string(&mut out).expect("response");
    assert!(out.starts_with("HTTP/1.1 200"), "unexpected response: {out}");
    out
}

fn bench_serve(c: &mut Criterion) {
    let handle = daemon();
    let addr = handle.addr;

    let mut group = c.benchmark_group("serve");
    group.sample_size(10);

    // Cold: a fresh scenario each iteration (index bump changes the
    // canonical hash), so the full pipeline runs every time.
    let cold_index = Cell::new(0u64);
    group.bench_with_input(BenchmarkId::new("plan_cold", N), &N, |b, _| {
        b.iter(|| {
            let body = plan_body(1000 + cold_index.replace(cold_index.get() + 1));
            let resp = post_plan(addr, &body);
            assert!(resp.contains("\"cache_hit\":false"), "cold request must miss");
            resp.len()
        })
    });

    // Hit: identical request, primed once outside the measured loop.
    let hit_body = plan_body(0);
    let primer = post_plan(addr, &hit_body);
    assert!(primer.contains("\"cache_hit\":false"));
    group.bench_with_input(BenchmarkId::new("plan_hit", N), &N, |b, _| {
        b.iter(|| {
            let resp = post_plan(addr, &hit_body);
            assert!(resp.contains("\"cache_hit\":true"), "repeat request must hit");
            resp.len()
        })
    });

    // Throughput: 64 cache-hit requests from 1 vs. 8 client threads.
    const REQUESTS: usize = 64;
    for &clients in &[1usize, 8] {
        group.bench_with_input(
            BenchmarkId::new("throughput", format!("{clients}_clients")),
            &clients,
            |b, &clients| {
                b.iter(|| {
                    let per_client = REQUESTS / clients;
                    let threads: Vec<_> = (0..clients)
                        .map(|_| {
                            let body = hit_body.clone();
                            std::thread::spawn(move || {
                                let mut total = 0usize;
                                for _ in 0..per_client {
                                    total += post_plan(addr, &body).len();
                                }
                                total
                            })
                        })
                        .collect();
                    threads.into_iter().map(|t| t.join().expect("client thread")).sum::<usize>()
                })
            },
        );
    }
    group.finish();

    handle.shutdown();
}

/// Sessions held live during the ingest benchmarks.
const INGEST_SESSIONS: usize = 10_000;
/// Concurrent ingest threads (store-level) / client threads (e2e).
const INGEST_THREADS: usize = 8;
/// Frames per `/telemetry/batch` request in the e2e benchmark.
const E2E_BATCH: usize = 125;
/// Lookup sweeps per churn pass.
const CHURN_ROUNDS: usize = 5;
/// Lookups between session inserts in a churn pass.
const CHURN: usize = 256;

/// The smallest controller the online crate will accept: two sensors,
/// one depot. Real per-session planning state, but cheap enough to
/// build 10 000×. Drain is slow (first predicted death at t = 1000) and
/// the horizon modest — the dispatch grid is emitted eagerly over the
/// whole horizon, so `horizon / τ₁` must stay small per session — which
/// keeps every bench tick (the clock never passes ~100) an in-band,
/// zero-replan ingest.
fn tiny_controller() -> OnlineController {
    let sensors = vec![Point2::new(10.0, 10.0), Point2::new(30.0, 40.0)];
    let depots = vec![Point2::new(0.0, 0.0)];
    let network = Network::new(sensors, depots);
    OnlineController::new(network, vec![1.0; 2], vec![1.0 / 1000.0; 2], OnlineConfig::new(5000.0))
        .expect("tiny controller")
}

/// [`tiny_controller`]'s construction arguments as a journal-able seed —
/// what `POST /session` would journal for it.
fn tiny_seed() -> ControllerSeed {
    ControllerSeed {
        sensors: vec![(10.0, 10.0), (30.0, 40.0)],
        depots: vec![(0.0, 0.0)],
        capacities: vec![1.0; 2],
        initial_rates: vec![1.0 / 1000.0; 2],
        config: OnlineConfig::new(5000.0),
    }
}

/// One ingest pass: every session receives one empty telemetry tick at
/// `time`, split over [`INGEST_THREADS`] threads (each session is owned
/// by exactly one thread, so per-session times stay monotone). Returns
/// the wall-clock elapsed and, when `latencies`, per-frame nanoseconds.
fn ingest_pass<F>(get: &F, ids: &[u64], time: f64, latencies: bool) -> (Duration, Vec<u64>)
where
    F: Fn(u64) -> Option<Arc<SessionSlot>> + Sync,
{
    let chunk = ids.len().div_ceil(INGEST_THREADS);
    let started = Instant::now();
    let lat: Vec<u64> = std::thread::scope(|s| {
        let handles: Vec<_> = ids
            .chunks(chunk)
            .map(|part| {
                s.spawn(move || {
                    let mut lat = Vec::with_capacity(if latencies { part.len() } else { 0 });
                    for &id in part {
                        let t0 = latencies.then(Instant::now);
                        let slot = get(id).expect("live session");
                        slot.lock()
                            .expect("not poisoned")
                            .ingest(&TelemetryBatch::tick(time))
                            .expect("monotone tick");
                        if let Some(t0) = t0 {
                            lat.push(t0.elapsed().as_nanos() as u64);
                        }
                    }
                    lat
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("ingest thread")).collect()
    });
    (started.elapsed(), lat)
}

/// One churn pass: [`CHURN_ROUNDS`] lookup sweeps over every session
/// from [`INGEST_THREADS`] threads, with one session *insert* per
/// [`CHURN`] lookups. Both stores run at capacity, so every insert pays
/// the LRU eviction scan — over the whole 10k-session map under the
/// global mutex, over one ~625-session shard under a shard write lock.
/// That 16× structural gap in lock-held work is what the
/// sharded-beats-mutex assertion runs on; lookups of evicted sessions
/// return `None` and count as misses. Returns wall-clock elapsed and,
/// when `latencies`, per-lookup nanoseconds from the final sweep.
fn churn_pass<G, I>(get: &G, insert: &I, ids: &[u64], latencies: bool) -> (Duration, Vec<u64>)
where
    G: Fn(u64) -> Option<Arc<SessionSlot>> + Sync,
    I: Fn() -> (u64, bool) + Sync,
{
    let chunk = ids.len().div_ceil(INGEST_THREADS);
    let started = Instant::now();
    let lat: Vec<u64> = std::thread::scope(|s| {
        let handles: Vec<_> = ids
            .chunks(chunk)
            .map(|part| {
                s.spawn(move || {
                    let mut lat = Vec::with_capacity(if latencies { part.len() } else { 0 });
                    for round in 0..CHURN_ROUNDS {
                        // Latency samples only from the final sweep, so
                        // warm caches are what gets measured.
                        let sample = latencies && round == CHURN_ROUNDS - 1;
                        for (i, &id) in part.iter().enumerate() {
                            if i % CHURN == 0 {
                                std::hint::black_box(insert());
                            }
                            let t0 = sample.then(Instant::now);
                            std::hint::black_box(get(id));
                            if let Some(t0) = t0 {
                                lat.push(t0.elapsed().as_nanos() as u64);
                            }
                        }
                    }
                    lat
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("churn thread")).collect()
    });
    (started.elapsed(), lat)
}

/// Best-of-three timed passes plus the final pass's latency samples.
fn best_of_three(mut pass: impl FnMut(bool) -> (Duration, Vec<u64>)) -> (Duration, Vec<u64>) {
    let mut best = Duration::MAX;
    let mut samples = Vec::new();
    for round in 0..3 {
        let (elapsed, lat) = pass(round == 2);
        best = best.min(elapsed);
        if !lat.is_empty() {
            samples = lat;
        }
    }
    (best, samples)
}

fn percentile_ns(samples: &mut [u64], p: f64) -> u64 {
    samples.sort_unstable();
    let idx = ((samples.len() - 1) as f64 * p).round() as usize;
    samples[idx]
}

fn per_sec(ops: usize, elapsed: Duration) -> u64 {
    (ops as f64 / elapsed.as_secs_f64()) as u64
}

/// A realistic mixed frame batch and its JSON request-body size, for
/// the binary-vs-JSON byte comparison.
fn wire_sample(frames: usize) -> (Vec<Frame>, usize) {
    let sample: Vec<Frame> = (0..frames as u64)
        .map(|i| {
            Frame::telemetry(
                i,
                TelemetryBatch {
                    time: i as f64 / 3.0 + 0.01,
                    records: vec![
                        TelemetryRecord::full(0, i as f64 / 7.0 + 0.02, 0.5 + i as f64 / 1000.0),
                        TelemetryRecord::rate(1, i as f64 / 11.0 + 0.03),
                    ],
                },
            )
        })
        .collect();
    let parts: Vec<String> = sample
        .iter()
        .map(|f| {
            let perpetuum_serve::wire::FramePayload::Telemetry(batch) = &f.payload else {
                unreachable!("sample frames are telemetry");
            };
            let batch = serde_json::to_string(batch).expect("batch json");
            format!("{{\"session\":{},{}", f.session, &batch[1..])
        })
        .collect();
    let json_len = format!("{{\"frames\":[{}]}}", parts.join(",")).len();
    (sample, json_len)
}

/// Raw binary POST of a frame batch; returns the response body bytes.
fn post_batch(addr: SocketAddr, body: &[u8]) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let head = format!(
        "POST /telemetry/batch HTTP/1.1\r\nhost: bench\r\ncontent-type: {ct}\r\naccept: {ct}\r\ncontent-length: {len}\r\n\r\n",
        ct = wire::CONTENT_TYPE,
        len = body.len()
    );
    stream.write_all(head.as_bytes()).expect("head");
    stream.write_all(body).expect("body");
    stream.shutdown(Shutdown::Write).expect("half-close");
    let mut out = Vec::new();
    stream.read_to_end(&mut out).expect("response");
    assert!(out.starts_with(b"HTTP/1.1 200"), "unexpected response status");
    let split = out.windows(4).position(|w| w == b"\r\n\r\n").expect("header terminator");
    out.split_off(split + 4)
}

/// One e2e pass: each client thread owns a contiguous slice of
/// sessions and posts them as binary batches of [`E2E_BATCH`] frames.
/// Returns wall-clock elapsed and, when `latencies`, per-request ns.
fn e2e_pass(addr: SocketAddr, ids: &[u64], time: f64, latencies: bool) -> (Duration, Vec<u64>) {
    let chunk = ids.len().div_ceil(INGEST_THREADS);
    let started = Instant::now();
    let lat: Vec<u64> = std::thread::scope(|s| {
        let handles: Vec<_> = ids
            .chunks(chunk)
            .map(|part| {
                s.spawn(move || {
                    let mut lat = Vec::new();
                    for batch in part.chunks(E2E_BATCH) {
                        let frames: Vec<Frame> = batch
                            .iter()
                            .map(|&session| Frame::telemetry(session, TelemetryBatch::tick(time)))
                            .collect();
                        let body = wire::encode_frames(&frames);
                        let t0 = latencies.then(Instant::now);
                        let reports = post_batch(addr, &body);
                        if let Some(t0) = t0 {
                            lat.push(t0.elapsed().as_nanos() as u64);
                        }
                        std::hint::black_box(reports);
                    }
                    lat
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("client thread")).collect()
    });
    (started.elapsed(), lat)
}

fn bench_ingest(c: &mut Criterion) {
    // -- store-level: sharded vs. single-mutex map, 10k sessions --
    // These two stores never churn (the apply benches need every id to
    // stay live); the sharded one gets 2x headroom because shard
    // assignment is hashed, so per-shard LRU capacity needs slack above
    // the mean occupancy to never evict during setup.
    let sharded = SessionStore::new(2 * INGEST_SESSIONS, 16);
    let mutexed = MutexMapStore::new(INGEST_SESSIONS);
    let sharded_ids: Vec<u64> =
        (0..INGEST_SESSIONS).map(|_| sharded.insert(tiny_controller()).0).collect();
    let mutexed_ids: Vec<u64> =
        (0..INGEST_SESSIONS).map(|_| mutexed.insert(tiny_controller()).0).collect();
    assert_eq!(sharded.len(), INGEST_SESSIONS, "no eviction during setup");
    assert_eq!(mutexed.len(), INGEST_SESSIONS, "no eviction during setup");

    let sharded_get = |id| sharded.get(id);
    let mutexed_get = |id| mutexed.get(id);
    let sharded_clock = Cell::new(1.0);
    let mutexed_clock = Cell::new(1.0);

    // The acceptance claim, measured on a churn workload (5 lookup
    // sweeps per pass with one insert per 256 lookups, both stores at
    // capacity so every insert evicts): the sharded store must strictly
    // beat the whole-map mutex. The gap is structural — the mutex pays
    // a 10k-session LRU scan under the global lock per insert, a shard
    // only its own ~625 — so regeneration fails loudly if the sharded
    // store ever stops winning.
    let churn_sharded = SessionStore::new(INGEST_SESSIONS, 16);
    let churn_mutexed = MutexMapStore::new(INGEST_SESSIONS);
    let churn_sharded_ids: Vec<u64> =
        (0..INGEST_SESSIONS).map(|_| churn_sharded.insert(tiny_controller()).0).collect();
    let churn_mutexed_ids: Vec<u64> =
        (0..INGEST_SESSIONS).map(|_| churn_mutexed.insert(tiny_controller()).0).collect();
    let churn_sharded_get = |id| churn_sharded.get(id);
    let churn_sharded_insert = || {
        let (id, evicted) = churn_sharded.insert(tiny_controller());
        (id, evicted.is_some())
    };
    let churn_mutexed_get = |id| churn_mutexed.get(id);
    let churn_mutexed_insert = || churn_mutexed.insert(tiny_controller());

    let (sharded_best, mut sharded_lat) = best_of_three(|lat| {
        churn_pass(&churn_sharded_get, &churn_sharded_insert, &churn_sharded_ids, lat)
    });
    let (mutexed_best, mut mutexed_lat) = best_of_three(|lat| {
        churn_pass(&churn_mutexed_get, &churn_mutexed_insert, &churn_mutexed_ids, lat)
    });
    assert!(
        sharded_best < mutexed_best,
        "sharded store ({sharded_best:?}) must beat mutex map ({mutexed_best:?}) \
         at {INGEST_SESSIONS} churning sessions x {INGEST_THREADS} threads"
    );
    let lookups = CHURN_ROUNDS * INGEST_SESSIONS;
    let churn_id = |best: Duration, lat: &mut [u64]| {
        format!(
            "{INGEST_SESSIONS}_sessions_{INGEST_THREADS}_threads_{}ops_p50_{}ns_p99_{}ns",
            per_sec(lookups, best),
            percentile_ns(lat, 0.50),
            percentile_ns(lat, 0.99),
        )
    };
    let sharded_churn_id = churn_id(sharded_best, &mut sharded_lat);
    let mutexed_churn_id = churn_id(mutexed_best, &mut mutexed_lat);

    let mut group = c.benchmark_group("ingest");
    group.sample_size(10);

    group.bench_with_input(BenchmarkId::new("churn_sharded", sharded_churn_id), &(), |b, _| {
        b.iter(|| {
            churn_pass(&churn_sharded_get, &churn_sharded_insert, &churn_sharded_ids, false).0
        })
    });
    group.bench_with_input(BenchmarkId::new("churn_mutex_map", mutexed_churn_id), &(), |b, _| {
        b.iter(|| {
            churn_pass(&churn_mutexed_get, &churn_mutexed_insert, &churn_mutexed_ids, false).0
        })
    });

    // Full frame-apply passes (lookup + slot lock + controller ingest)
    // on both stores: the end-to-end in-process ingest throughput.
    let (sharded_apply, mut sharded_apply_lat) = best_of_three(|lat| {
        ingest_pass(
            &sharded_get,
            &sharded_ids,
            sharded_clock.replace(sharded_clock.get() + 1.0),
            lat,
        )
    });
    let (mutexed_apply, mut mutexed_apply_lat) = best_of_three(|lat| {
        ingest_pass(
            &mutexed_get,
            &mutexed_ids,
            mutexed_clock.replace(mutexed_clock.get() + 1.0),
            lat,
        )
    });
    let apply_id = |best: Duration, lat: &mut [u64]| {
        format!(
            "{INGEST_SESSIONS}_sessions_{INGEST_THREADS}_threads_{}sps_p50_{}ns_p99_{}ns",
            per_sec(INGEST_SESSIONS, best),
            percentile_ns(lat, 0.50),
            percentile_ns(lat, 0.99),
        )
    };
    let sharded_apply_id = apply_id(sharded_apply, &mut sharded_apply_lat);
    let mutexed_apply_id = apply_id(mutexed_apply, &mut mutexed_apply_lat);
    group.bench_with_input(BenchmarkId::new("apply_sharded", sharded_apply_id), &(), |b, _| {
        b.iter(|| {
            ingest_pass(
                &sharded_get,
                &sharded_ids,
                sharded_clock.replace(sharded_clock.get() + 1.0),
                false,
            )
            .0
        })
    });
    group.bench_with_input(BenchmarkId::new("apply_mutex_map", mutexed_apply_id), &(), |b, _| {
        b.iter(|| {
            ingest_pass(
                &mutexed_get,
                &mutexed_ids,
                mutexed_clock.replace(mutexed_clock.get() + 1.0),
                false,
            )
            .0
        })
    });

    // -- wire format: binary must be less than half the JSON bytes --
    let (sample, json_len) = wire_sample(256);
    let binary_len = wire::encode_frames(&sample).len();
    assert!(
        binary_len * 2 < json_len,
        "binary frame batch ({binary_len} B) must be under half the JSON body ({json_len} B)"
    );
    group.bench_with_input(
        BenchmarkId::new(
            "wire_encode",
            format!("256_frames_binary_{binary_len}B_json_{json_len}B"),
        ),
        &sample,
        |b, sample| b.iter(|| wire::encode_frames(std::hint::black_box(sample)).len()),
    );

    // -- e2e: binary /telemetry/batch over real sockets --
    let handle = start(ServerConfig {
        workers: INGEST_THREADS,
        queue_capacity: 256,
        cache_capacity: 16,
        session_capacity: 2 * INGEST_SESSIONS,
        session_shards: 16,
        session_threads: INGEST_THREADS,
        ..ServerConfig::default()
    })
    .expect("ingest daemon starts");
    let addr = handle.addr;
    let e2e_ids: Vec<u64> =
        (0..INGEST_SESSIONS).map(|_| handle.state().sessions.insert(tiny_controller()).0).collect();
    let e2e_clock = Cell::new(1.0);

    // Warm-up pass also validates the reports: every frame must apply.
    {
        let frames: Vec<Frame> = e2e_ids
            .iter()
            .take(E2E_BATCH)
            .map(|&session| Frame::telemetry(session, TelemetryBatch::tick(0.5)))
            .collect();
        let reports = post_batch(addr, &wire::encode_frames(&frames));
        let outcomes = wire::decode_reports(&reports).expect("binary reports");
        assert_eq!(outcomes.len(), frames.len());
        assert!(outcomes.iter().all(|o| o.result.is_ok()), "all warm-up frames apply");
    }
    e2e_pass(addr, &e2e_ids, e2e_clock.replace(2.0), false);

    let (e2e_best, mut e2e_lat) = best_of_three(|lat| {
        e2e_pass(addr, &e2e_ids, e2e_clock.replace(e2e_clock.get() + 1.0), lat)
    });
    let e2e_id = format!(
        "{INGEST_SESSIONS}_sessions_{INGEST_THREADS}_clients_{}sps_req_p50_{}us_p99_{}us",
        per_sec(INGEST_SESSIONS, e2e_best),
        percentile_ns(&mut e2e_lat, 0.50) / 1_000,
        percentile_ns(&mut e2e_lat, 0.99) / 1_000,
    );
    group.bench_with_input(BenchmarkId::new("batch_e2e", e2e_id), &(), |b, _| {
        b.iter(|| e2e_pass(addr, &e2e_ids, e2e_clock.replace(e2e_clock.get() + 1.0), false).0)
    });

    // -- e2e with the write-ahead journal: the durability overhead --
    // Identical daemon + workload, but every accepted frame is appended
    // to the per-shard WAL (batched fsync) before its ack.
    let journal_dir =
        std::env::temp_dir().join(format!("perpetuum-bench-journal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&journal_dir);
    let journaled = start(ServerConfig {
        workers: INGEST_THREADS,
        queue_capacity: 256,
        cache_capacity: 16,
        session_capacity: 2 * INGEST_SESSIONS,
        session_shards: 16,
        session_threads: INGEST_THREADS,
        data_dir: Some(journal_dir.clone()),
        compact_every: 0, // measure raw append cost, not compaction blips
        ..ServerConfig::default()
    })
    .expect("journaled daemon starts");
    let j_addr = journaled.addr;
    let j_ids: Vec<u64> = (0..INGEST_SESSIONS)
        .map(|_| journaled.state().sessions.insert(tiny_controller()).0)
        .collect();
    let j_clock = Cell::new(1.0);
    e2e_pass(j_addr, &j_ids, j_clock.replace(2.0), false);
    // Paired measurement: alternate plain and journaled passes
    // back-to-back, then compare the two minima — drift between the
    // daemons' distant setup phases cannot masquerade as journaling
    // overhead.
    let mut paired_plain = Duration::MAX;
    let mut j_best = Duration::MAX;
    let mut j_lat: Vec<u64> = Vec::new();
    for _ in 0..3 {
        let (plain, _) = e2e_pass(addr, &e2e_ids, e2e_clock.replace(e2e_clock.get() + 1.0), false);
        paired_plain = paired_plain.min(plain);
        let (j, lat) = e2e_pass(j_addr, &j_ids, j_clock.replace(j_clock.get() + 1.0), true);
        if j < j_best {
            j_best = j;
            j_lat = lat;
        }
    }
    let overhead_pct = (j_best.as_secs_f64() / paired_plain.as_secs_f64() - 1.0) * 100.0;
    let j_id = format!(
        "{INGEST_SESSIONS}_sessions_{INGEST_THREADS}_clients_{}sps_overhead_{}pct_p50_{}us_p99_{}us",
        per_sec(INGEST_SESSIONS, j_best),
        overhead_pct.round() as i64,
        percentile_ns(&mut j_lat, 0.50) / 1_000,
        percentile_ns(&mut j_lat, 0.99) / 1_000,
    );
    group.bench_with_input(BenchmarkId::new("batch_e2e_journaled", j_id), &(), |b, _| {
        b.iter(|| e2e_pass(j_addr, &j_ids, j_clock.replace(j_clock.get() + 1.0), false).0)
    });

    // -- recovery: replay a journaled fleet from a cold WAL --
    const RECOVERY_SESSIONS: usize = 2_000;
    const RECOVERY_FRAMES: usize = 4;
    let recovery_dir =
        std::env::temp_dir().join(format!("perpetuum-bench-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&recovery_dir);
    {
        let journal = JournalSet::open(
            &recovery_dir,
            16,
            FsyncPolicy::Never,
            0,
            Arc::new(Metrics::default()),
        )
        .expect("open recovery journal");
        let store = SessionStore::new(2 * RECOVERY_SESSIONS, 16);
        let seed = tiny_seed();
        for _ in 0..RECOVERY_SESSIONS {
            let id = store.allocate_id();
            journal.append_create(id, &seed);
            for t in 1..=RECOVERY_FRAMES {
                journal
                    .append_frames(id, vec![Frame::telemetry(id, TelemetryBatch::tick(t as f64))]);
            }
        }
        journal.flush().expect("journal flush");
    }
    // `recover` rebases the files it reads, so snapshot the raw WAL bytes
    // and restore them before every replay — each iteration recovers the
    // same cold, snapshot-less journal.
    let wal_files: Vec<(std::path::PathBuf, Vec<u8>)> = std::fs::read_dir(&recovery_dir)
        .expect("recovery dir")
        .map(|e| {
            let path = e.expect("entry").path();
            let bytes = std::fs::read(&path).expect("wal bytes");
            (path, bytes)
        })
        .collect();
    let restore_and_recover = || {
        for entry in std::fs::read_dir(&recovery_dir).expect("recovery dir") {
            let _ = std::fs::remove_file(entry.expect("entry").path());
        }
        for (path, bytes) in &wal_files {
            std::fs::write(path, bytes).expect("restore wal");
        }
        let journal = JournalSet::open(
            &recovery_dir,
            16,
            FsyncPolicy::Never,
            0,
            Arc::new(Metrics::default()),
        )
        .expect("reopen journal");
        let store = SessionStore::new(2 * RECOVERY_SESSIONS, 16);
        let started = Instant::now();
        let stats = journal.recover(&store).expect("recover");
        let elapsed = started.elapsed();
        assert_eq!(stats.sessions, RECOVERY_SESSIONS);
        elapsed
    };
    let recover_best = (0..3).map(|_| restore_and_recover()).min().expect("three passes");
    let recovery_id = format!(
        "{RECOVERY_SESSIONS}_sessions_{}_wal_records_{}ms",
        RECOVERY_SESSIONS * (1 + RECOVERY_FRAMES),
        recover_best.as_millis(),
    );
    group.bench_with_input(BenchmarkId::new("recovery_replay", recovery_id), &(), |b, _| {
        b.iter(restore_and_recover)
    });

    group.finish();
    handle.shutdown();
    journaled.shutdown();
    let _ = std::fs::remove_dir_all(&journal_dir);
    let _ = std::fs::remove_dir_all(&recovery_dir);
}

criterion_group!(benches, bench_serve, bench_ingest);
criterion_main!(benches);
