//! Ablation benchmarks: runtime cost of the design-choice variants whose
//! *service-cost* effect is measured by `perpetuum-exp --ablation ...`.
//!
//! * rounding — Algorithm 3 vs the per-sensor exact-cadence strawman vs
//!   charging everyone every `τ_min`;
//! * tour polish — plain tree-doubling routing vs + 2-opt/Or-opt;
//! * repair — nearest-scheduling `V^a` insertion vs charge-all-now, run
//!   through the full simulator.

use criterion::{criterion_group, criterion_main, Criterion};
use perpetuum_core::mtd::{plan_min_total_distance, MtdConfig};
use perpetuum_core::naive::{plan_charge_all, plan_per_sensor_cadence};
use perpetuum_core::network::Instance;
use perpetuum_core::var::RepairStrategy;
use perpetuum_exp::scenario::Scenario;
use perpetuum_sim::{run, SimConfig, VarPolicy};
use std::hint::black_box;

fn bench_rounding(c: &mut Criterion) {
    let s = Scenario { n: 150, horizon: 200.0, ..Scenario::paper_fixed() };
    let topo = s.build_topology(21, 0);
    let inst = Instance::new(topo.network.clone(), topo.init_cycles.clone(), s.horizon);

    let mut group = c.benchmark_group("ablation_rounding");
    group.sample_size(20);
    group.bench_function("mtd_rounded_aligned", |b| {
        b.iter(|| black_box(plan_min_total_distance(&inst, &MtdConfig::default())))
    });
    group.bench_function("per_sensor_exact_cadence", |b| {
        b.iter(|| black_box(plan_per_sensor_cadence(&inst)))
    });
    group.bench_function("charge_all_every_tau_min", |b| {
        b.iter(|| black_box(plan_charge_all(&inst)))
    });
    group.finish();
}

fn bench_polish(c: &mut Criterion) {
    let s = Scenario { n: 150, horizon: 200.0, ..Scenario::paper_fixed() };
    let topo = s.build_topology(22, 0);
    let inst = Instance::new(topo.network.clone(), topo.init_cycles.clone(), s.horizon);

    let mut group = c.benchmark_group("ablation_tour_polish");
    group.sample_size(20);
    group.bench_function("algorithm_2_plain", |b| {
        b.iter(|| black_box(plan_min_total_distance(&inst, &MtdConfig::default())))
    });
    group.bench_function("algorithm_2_polished", |b| {
        b.iter(|| {
            black_box(plan_min_total_distance(
                &inst,
                &MtdConfig { polish_rounds: 10, ..MtdConfig::default() },
            ))
        })
    });
    group.finish();
}

fn bench_repair(c: &mut Criterion) {
    let s = Scenario { n: 80, horizon: 150.0, ..Scenario::paper_variable() };
    let topo = s.build_topology(23, 0);
    let cfg =
        SimConfig { horizon: s.horizon, slot: s.slot, seed: topo.sim_seed, charger_speed: None };

    let mut group = c.benchmark_group("ablation_repair");
    group.sample_size(10);
    group.bench_function("nearest_scheduling_repair", |b| {
        b.iter(|| {
            let mut p = VarPolicy::new(&topo.network);
            black_box(run(s.build_world(&topo), &cfg, &mut p))
        })
    });
    group.bench_function("charge_all_now_repair", |b| {
        b.iter(|| {
            let mut p = VarPolicy::new(&topo.network);
            p.repair = RepairStrategy::ChargeAllNow;
            black_box(run(s.build_world(&topo), &cfg, &mut p))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_rounding, bench_polish, bench_repair);
criterion_main!(benches);
