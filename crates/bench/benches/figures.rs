//! Per-figure regenerator benchmarks — one Criterion benchmark per figure
//! of the paper's evaluation (Figures 1(a)–6).
//!
//! Each benchmark runs the *same pipeline* the `perpetuum-exp` CLI uses for
//! that figure (topology generation → policy → simulator → aggregation),
//! scaled down (1 topology per point, `T = 50`) so `cargo bench` completes
//! in minutes. The full-scale tables in EXPERIMENTS.md come from
//! `perpetuum-exp --all --topologies 100`.

use criterion::{criterion_group, criterion_main, Criterion};
use perpetuum_exp::figures::{run_figure_scaled, FigureId};
use std::hint::black_box;

const TOPOLOGIES: usize = 1;
const SCALE: f64 = 0.05; // T = 50

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    for id in FigureId::ALL {
        group.bench_function(id.id(), |b| {
            b.iter(|| {
                let fd = run_figure_scaled(black_box(id), TOPOLOGIES, 42, SCALE);
                // The benchmark doubles as a liveness check: a figure run
                // that kills sensors is a regression even if it is fast.
                let deaths: usize = fd.series.iter().flat_map(|s| s.deaths.iter()).sum();
                assert_eq!(deaths, 0, "{}: sensor deaths", fd.id);
                black_box(fd)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
