//! Simulation-engine scaling: event-driven core vs the dense-sweep
//! reference.
//!
//! The numbers behind `BENCH_sim.json` and the README scaling table. Both
//! engines run the *same* scenario — same sparse network, same policy,
//! same RNG streams — so any gap is pure engine overhead: the reference
//! pays O(n) per event (drain sweep + observation build), the event-driven
//! core pays O(log n) between slot boundaries.
//!
//! Scenarios:
//!
//! * `polling` — the greedy baseline polling 4× per time unit on a
//!   mostly-idle network (1% hot fraction), so checks vastly outnumber
//!   charges. This is the case the event-driven core exists for.
//! * `adaptive` — `MinTotalDistance-var` on a slot-resampled variable
//!   world: work concentrates in slot-boundary replans (identical in both
//!   engines), so the gap narrows — included to keep the comparison
//!   honest, not to flatter it.
//! * `incremental_adaptive` / `full_adaptive` — the same adaptive scenario
//!   with the planner pinned to each replanning tier: the default
//!   incremental path (persistent-forest splicing + warm-started tours)
//!   against the from-scratch ablation. Each id's parameter carries the
//!   cumulative planner time of its setup run, so the committed JSON
//!   records the planner-time breakdown alongside the wall clock; the
//!   setup asserts incremental planner time ≤ from-scratch at n ≥ 5000, so
//!   a regression fails the generation.
//!
//! Both run in instant and travel-time charging modes. Networks are
//! sparse (`Network::sparse`): at n = 10_000 a dense matrix would be
//! ~800 MB, and since this PR the in-sim replan path never needs one
//! (the setup asserts it).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use perpetuum_core::network::Network;
use perpetuum_energy::CycleDistribution;
use perpetuum_geom::{deploy, derived_rng, Field};
use perpetuum_sim::{run, run_reference, GreedyPolicy, SimConfig, SimResult, VarPolicy, World};
use rand::Rng;
use std::hint::black_box;

const Q: usize = 5;
const SIZES: [usize; 3] = [1000, 5000, 10_000];

fn network(n: usize, seed: u64) -> Network {
    let field = Field::paper_default();
    let mut rng = derived_rng(seed, 0);
    let sensors = deploy::uniform_deployment(field, n, &mut rng);
    let depots = deploy::place_depots(
        field,
        field.center(),
        Q,
        deploy::DepotPlacement::OneAtBaseStation,
        &mut rng,
    );
    let net = Network::sparse(sensors, depots);
    assert!(!net.has_dense_matrix(), "sim benches must stay matrix-free");
    net
}

/// A mostly-idle network with a 1% hot fraction — the regime a tight poll
/// is for: almost every check finds almost nothing urgent, so per-check
/// engine overhead (the thing this scenario measures) dominates, and the
/// engine-independent planning work stays negligible. The hot sensors keep
/// the charging machinery genuinely exercised (~3 recharges each).
fn polling_world(network: &Network, seed: u64) -> World {
    let mut rng = derived_rng(seed, 1);
    let cycles: Vec<f64> =
        (0..network.n())
            .map(|i| {
                if i % 100 == 0 {
                    rng.gen_range(120.0..180.0)
                } else {
                    rng.gen_range(3000.0..5000.0)
                }
            })
            .collect();
    World::fixed(network.clone(), &cycles)
}

fn polling_policy(network: &Network) -> GreedyPolicy<'_> {
    let mut p = GreedyPolicy::new(network, 100.0);
    p.poll = Some(0.25);
    p
}

fn polling_cfg(seed: u64, travel: bool) -> SimConfig {
    SimConfig {
        horizon: 500.0,
        slot: 10.0,
        seed,
        charger_speed: if travel { Some(10_000.0) } else { None },
    }
}

/// Slot-resampled variable world for the adaptive policy.
fn adaptive_world(network: &Network) -> World {
    let field = Field::paper_default();
    let dist = CycleDistribution::Linear { sigma: 2.0 };
    let means = dist.mean_all(network.sensor_positions(), field.center(), 20.0, 60.0);
    World::variable(network.clone(), &means, dist, 20.0, 60.0)
}

fn adaptive_cfg(seed: u64, travel: bool) -> SimConfig {
    SimConfig {
        horizon: 200.0,
        slot: 10.0,
        seed,
        charger_speed: if travel { Some(10_000.0) } else { None },
    }
}

/// Both engines must do the same work for the timing comparison to mean
/// anything; discrete outputs are compared exactly (the full slack-aware
/// equivalence lives in `crates/sim/tests/equivalence.rs`).
fn assert_same_scenario(a: &SimResult, b: &SimResult) {
    assert_eq!(a.dispatches, b.dispatches);
    assert_eq!(a.charges, b.charges);
    assert_eq!(a.deaths.len(), b.deaths.len());
    assert_eq!(a.charge_log, b.charge_log);
}

fn bench_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim");
    group.sample_size(10);

    for &n in &SIZES {
        let net = network(n, n as u64);

        for travel in [false, true] {
            let mode = if travel { "travel" } else { "instant" };

            // Polling scenario.
            let cfg = polling_cfg(n as u64, travel);
            {
                let fast = run(polling_world(&net, n as u64), &cfg, &mut polling_policy(&net));
                let slow =
                    run_reference(polling_world(&net, n as u64), &cfg, &mut polling_policy(&net));
                assert!(fast.charges > 0, "scenario must exercise charging");
                assert_same_scenario(&fast, &slow);
            }
            let id = format!("event_polling_{mode}");
            group.bench_with_input(BenchmarkId::new(id, n), &n, |b, _| {
                b.iter(|| {
                    let mut p = polling_policy(&net);
                    black_box(run(polling_world(&net, n as u64), &cfg, &mut p))
                })
            });
            let id = format!("reference_polling_{mode}");
            group.bench_with_input(BenchmarkId::new(id, n), &n, |b, _| {
                b.iter(|| {
                    let mut p = polling_policy(&net);
                    black_box(run_reference(polling_world(&net, n as u64), &cfg, &mut p))
                })
            });

            // Adaptive scenario.
            let cfg = adaptive_cfg(n as u64, travel);
            {
                let fast = run(adaptive_world(&net), &cfg, &mut VarPolicy::new(&net));
                let slow = run_reference(adaptive_world(&net), &cfg, &mut VarPolicy::new(&net));
                assert_same_scenario(&fast, &slow);
            }

            // Planner-tier breakdown: one run per tier, planner time split
            // out of the wall clock via the policy's internal stopwatch.
            let mut inc_policy = VarPolicy::new(&net);
            let inc_result = run(adaptive_world(&net), &cfg, &mut inc_policy);
            let mut full_policy = VarPolicy::full_replanning(&net);
            let full_result = run(adaptive_world(&net), &cfg, &mut full_policy);
            assert!(inc_result.dispatches > 0 && full_result.dispatches > 0);
            let inc_planner =
                inc_policy.planner_seconds_incremental() + inc_policy.planner_seconds_full();
            let full_planner = full_policy.planner_seconds_full();
            if n >= 5000 {
                assert!(
                    inc_policy.incremental_replans() > 0,
                    "adaptive drift at n = {n} must exercise the incremental path"
                );
                assert!(
                    inc_planner <= full_planner,
                    "incremental planner time ({inc_planner:.3}s) must not exceed \
                     from-scratch ({full_planner:.3}s) at n = {n}"
                );
            }

            let id = format!("incremental_adaptive_{mode}");
            let param = format!("{n}_planner_{:.0}ms", inc_planner * 1e3);
            group.bench_with_input(BenchmarkId::new(id, param), &n, |b, _| {
                b.iter(|| {
                    let mut p = VarPolicy::new(&net);
                    black_box(run(adaptive_world(&net), &cfg, &mut p))
                })
            });
            let id = format!("full_adaptive_{mode}");
            let param = format!("{n}_planner_{:.0}ms", full_planner * 1e3);
            group.bench_with_input(BenchmarkId::new(id, param), &n, |b, _| {
                b.iter(|| {
                    let mut p = VarPolicy::full_replanning(&net);
                    black_box(run(adaptive_world(&net), &cfg, &mut p))
                })
            });

            let id = format!("event_adaptive_{mode}");
            group.bench_with_input(BenchmarkId::new(id, n), &n, |b, _| {
                b.iter(|| {
                    let mut p = VarPolicy::new(&net);
                    black_box(run(adaptive_world(&net), &cfg, &mut p))
                })
            });
            let id = format!("reference_adaptive_{mode}");
            group.bench_with_input(BenchmarkId::new(id, n), &n, |b, _| {
                b.iter(|| {
                    let mut p = VarPolicy::new(&net);
                    black_box(run_reference(adaptive_world(&net), &cfg, &mut p))
                })
            });
        }
    }

    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
