//! Scoped-thread parallel sweeps for experiment harnesses.
//!
//! The evaluation averages every data point over many independent random
//! topologies — an embarrassingly parallel workload. Following the
//! hpc-parallel guidance, parallelism lives only at this outermost level:
//! each worker runs the (deterministic, single-threaded) simulator on its
//! own topology, and results are returned **in input order** so a parallel
//! sweep is bit-identical to a sequential one.
//!
//! Built on `std::thread::scope` + an atomic work index (no unsafe, no
//! external dependency, no global thread pool).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Number of worker threads to use: the available parallelism, capped by
/// the number of work items (never zero).
pub fn default_workers(items: usize) -> usize {
    let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    hw.min(items).max(1)
}

/// Applies `f` to `0..items` on `workers` threads, returning results in
/// index order.
///
/// `f` must be `Sync` (it is shared by reference across workers) and the
/// result type `Send`. Work is distributed dynamically through an atomic
/// counter, so uneven item costs balance automatically.
///
/// # Panics
/// Panics if any invocation of `f` panics (the panic is propagated).
pub fn par_map_indexed<T, F>(items: usize, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if items == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, items);
    if workers == 1 {
        return (0..items).map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, T)>();

    // `std::thread::scope` re-raises any worker panic after joining all
    // threads, so a panicking `f` propagates to the caller.
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items {
                    break;
                }
                // A send only fails if the receiver was dropped, which
                // cannot happen while this scope is alive.
                tx.send((i, f(i))).expect("result channel closed early");
            });
        }
        drop(tx);
    });

    let mut slots: Vec<Option<T>> = (0..items).map(|_| None).collect();
    for (i, v) in rx.try_iter() {
        slots[i] = Some(v);
    }
    slots.into_iter().map(|s| s.expect("every work item produces exactly one result")).collect()
}

/// [`par_map_indexed`] with [`default_workers`].
pub fn par_map<T, F>(items: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    par_map_indexed(items, default_workers(items), f)
}

/// Applies `f` to every element of `inputs` in parallel, preserving order.
pub fn par_map_slice<I, T, F>(inputs: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    par_map(inputs.len(), |i| f(&inputs[i]))
}

/// Mean of a slice; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sample standard deviation; 0 for fewer than two samples.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_input_order() {
        let out = par_map_indexed(100, 4, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = par_map_indexed(0, 4, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn single_worker_path() {
        let out = par_map_indexed(10, 1, |i| i + 1);
        assert_eq!(out, (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_equals_sequential() {
        let seq = par_map_indexed(64, 1, |i| (i as f64).sqrt());
        let par = par_map_indexed(64, 8, |i| (i as f64).sqrt());
        assert_eq!(seq, par);
    }

    #[test]
    fn uneven_work_balances() {
        // Items with wildly different costs still all complete.
        let out = par_map_indexed(32, 4, |i| {
            let mut acc = 0u64;
            for k in 0..(i * 1000) {
                acc = acc.wrapping_add(k as u64);
            }
            (i, acc)
        });
        assert_eq!(out.len(), 32);
        for (i, item) in out.iter().enumerate() {
            assert_eq!(item.0, i);
        }
    }

    #[test]
    fn par_map_slice_borrows() {
        let inputs = vec!["a".to_string(), "bb".to_string(), "ccc".to_string()];
        let out = par_map_slice(&inputs, |s| s.len());
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    #[should_panic]
    fn worker_panics_propagate() {
        par_map_indexed(8, 2, |i| {
            if i == 5 {
                panic!("boom");
            }
            i
        });
    }

    #[test]
    fn stats_helpers() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[1.0]), 0.0);
        assert!((std_dev(&[2.0, 4.0]) - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn default_workers_bounds() {
        assert_eq!(default_workers(0), 1);
        assert!(default_workers(1) == 1);
        assert!(default_workers(1000) >= 1);
    }
}
