//! Property suite for the refinement move kernels (`perpetuum-opt` via
//! `perpetuum_core::refine`): accepted moves never increase cost, the
//! sensor multiset of every tour set is exactly preserved, feasibility
//! survives, and a fixed `(seed, budget)` is byte-identical across runs
//! — including on tour sets the `IncrementalPlanner` has spliced.

use perpetuum_core::incremental::IncrementalPlanner;
use perpetuum_core::mtd::{plan_min_total_distance, MtdConfig};
use perpetuum_core::network::{Instance, Network};
use perpetuum_core::refine::{refine, refine_tour_set, Budget};
use perpetuum_core::var::{RepairStrategy, VarInput};
use perpetuum_core::{check_series, power_class};
use perpetuum_geom::Point2;
use proptest::prelude::*;

fn points(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Point2>> {
    prop::collection::vec((0.0..1000.0f64, 0.0..1000.0f64), n)
        .prop_map(|v| v.into_iter().map(|(x, y)| Point2::new(x, y)).collect())
}

fn sorted(mut v: Vec<usize>) -> Vec<usize> {
    v.sort_unstable();
    v
}

/// Every sensor node of a tour set, as a sorted list (depots excluded).
fn set_sensor_multiset(set: &perpetuum_core::TourSet, n: usize) -> Vec<usize> {
    sorted(set.tours().iter().flat_map(|t| t.nodes().iter().copied()).filter(|&v| v < n).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn refined_plans_cost_less_preserve_sensors_and_stay_feasible(
        sensors in points(8..48),
        depots in points(2..5),
        tau in 4.0..16.0f64,
        seed in 0u64..1000,
        budget in 0u64..60_000,
    ) {
        let n = sensors.len();
        let network = Network::new(sensors, depots);
        let instance = Instance::new(network, vec![tau; n], 4.0 * tau);
        let plan = plan_min_total_distance(&instance, &MtdConfig::default());
        let constructive_ok = check_series(&instance, &plan).is_ok();

        let (refined, report) =
            refine(instance.network(), &plan, &Budget::steps(budget), seed);

        // Cost never increases, overall or per set.
        prop_assert!(report.refined_cost <= report.constructive_cost + 1e-9);
        prop_assert_eq!(refined.sets().len(), plan.sets().len());
        for (after, before) in refined.sets().iter().zip(plan.sets()) {
            prop_assert!(after.cost() <= before.cost() + 1e-9);
            // Exact sensor multiset per set (and per network: the union
            // over sets is determined by the per-set equality).
            prop_assert_eq!(
                set_sensor_multiset(after, n),
                set_sensor_multiset(before, n)
            );
            // Depots stay pinned at the root of every tour.
            for (ta, tb) in after.tours().iter().zip(before.tours()) {
                prop_assert_eq!(ta.start(), tb.start());
            }
        }
        // Dispatch grid untouched ⇒ feasibility verdict unchanged.
        prop_assert_eq!(refined.dispatches(), plan.dispatches());
        if constructive_ok {
            prop_assert!(check_series(&instance, &refined).is_ok());
        }
    }

    #[test]
    fn fixed_seed_and_budget_is_byte_identical(
        sensors in points(8..40),
        depots in points(2..4),
        seed in 0u64..1000,
        budget in 0u64..40_000,
    ) {
        let n = sensors.len();
        let network = Network::new(sensors, depots);
        let instance = Instance::new(network, vec![6.0; n], 24.0);
        let plan = plan_min_total_distance(&instance, &MtdConfig::default());

        let (a, ra) = refine(instance.network(), &plan, &Budget::steps(budget), seed);
        let (b, rb) = refine(instance.network(), &plan, &Budget::steps(budget), seed);
        let ja = serde_json::to_string(&a).expect("serialize refined plan");
        let jb = serde_json::to_string(&b).expect("serialize refined plan");
        prop_assert_eq!(ja, jb);
        prop_assert_eq!(ra.steps, rb.steps);
        prop_assert_eq!(ra.accepted, rb.accepted);
    }

    #[test]
    fn more_budget_never_costs_more(
        sensors in points(10..36),
        depots in points(2..4),
        seed in 0u64..100,
        small in 0u64..20_000,
        extra in 0u64..40_000,
    ) {
        // The refiner walks a single deterministic trajectory of strict
        // improvements; a bigger budget only extends it, so refined cost
        // is monotone non-increasing in the step budget.
        let n = sensors.len();
        let network = Network::new(sensors, depots);
        let instance = Instance::new(network, vec![5.0; n], 20.0);
        let plan = plan_min_total_distance(&instance, &MtdConfig::default());
        let (_, lo) = refine(instance.network(), &plan, &Budget::steps(small), seed);
        let (_, hi) =
            refine(instance.network(), &plan, &Budget::steps(small + extra), seed);
        prop_assert!(hi.refined_cost <= lo.refined_cost + 1e-9);
    }

    #[test]
    fn spliced_sets_refine_deterministically(
        sensors in points(12..40),
        depots in points(2..4),
        seed in 0u64..500,
        budget in 1_000u64..40_000,
        moved in 1usize..4,
    ) {
        // Seed the incremental planner, migrate a few sensors one class
        // up (the splice path), then refine the spliced base sets: the
        // result must still preserve membership, never cost more, and be
        // byte-identical for a fixed (seed, budget).
        let n = sensors.len();
        let network = Network::new(sensors, depots);
        let taus: Vec<f64> = (0..n).map(|i| 4.0 + (i % 5) as f64 * 3.0).collect();
        let input = VarInput {
            network: &network,
            max_cycles: &taus,
            residuals: &taus,
            now: 0.0,
            horizon: 64.0,
            polish_rounds: 0,
        };
        let (_, mut planner) =
            IncrementalPlanner::seed(&input, RepairStrategy::NearestScheduling);
        let k_max = planner.k_max();
        if k_max == 0 {
            return; // single-class instance: nothing to migrate
        }

        // Move up to `moved` sensors into the next class up (splice).
        let tau1 = planner.tau1();
        let changes: Vec<(usize, usize)> = (0..n)
            .filter(|&i| power_class(tau1, taus[i]) < k_max)
            .take(moved)
            .map(|i| (i, power_class(tau1, taus[i]) + 1))
            .collect();
        if changes.is_empty() {
            return; // everyone already sits in the top class
        }
        planner.apply_migrations(&network, &changes);

        for k in 0..=k_max {
            let spliced = planner.tour_set(k).clone();
            let (ra, oa) = refine_tour_set(&network, &spliced, &Budget::steps(budget), seed);
            let (rb, ob) = refine_tour_set(&network, &spliced, &Budget::steps(budget), seed);
            prop_assert!(ra.cost() <= spliced.cost() + 1e-9);
            prop_assert_eq!(
                set_sensor_multiset(&ra, n),
                set_sensor_multiset(&spliced, n)
            );
            prop_assert_eq!(oa.steps, ob.steps);
            let ja = serde_json::to_string(&ra).expect("serialize set");
            let jb = serde_json::to_string(&rb).expect("serialize set");
            prop_assert_eq!(ja, jb);
        }
    }
}
