//! Property-based tests for the extension modules: range splitting,
//! min–max covers and the alternative routing constructors.

use perpetuum_core::minmax::min_max_cover;
use perpetuum_core::network::Network;
use perpetuum_core::qtsp::{q_rooted_tsp, q_rooted_tsp_routed, Routing};
use perpetuum_core::split::split_tour;
use perpetuum_geom::Point2;
use perpetuum_graph::{DistMatrix, Tour};
use proptest::prelude::*;

fn points(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Point2>> {
    prop::collection::vec((0.0..1000.0f64, 0.0..1000.0f64), n)
        .prop_map(|v| v.into_iter().map(|(x, y)| Point2::new(x, y)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn split_preserves_coverage_and_respects_range(
        pts in points(3..20),
        frac in 0.3..1.0f64,
    ) {
        // Tour over all points with node 0 as depot.
        let d = DistMatrix::from_points(&pts);
        let tour = Tour::new((0..pts.len()).collect());
        let full = tour.length(&d);
        // Range between the worst round trip and the full tour.
        let worst_rt = (1..pts.len())
            .map(|v| 2.0 * d.get(0, v))
            .fold(0.0f64, f64::max);
        let max_len = worst_rt.max(full * frac);
        let trips = split_tour(&d, &tour, max_len).unwrap();
        // Every trip within range, starting at the depot.
        for t in &trips {
            prop_assert!(t.length(&d) <= max_len + 1e-6);
            prop_assert_eq!(t.start(), Some(0));
        }
        // Coverage preserved in original order.
        let covered: Vec<usize> = trips
            .iter()
            .flat_map(|t| t.nodes()[1..].iter().copied())
            .collect();
        prop_assert_eq!(covered, (1..pts.len()).collect::<Vec<_>>());
        // Splitting never shortens the total.
        let total: f64 = trips.iter().map(|t| t.length(&d)).sum();
        prop_assert!(total + 1e-6 >= full.min(max_len) || total + 1e-6 >= full || trips.len() == 1);
        if trips.len() == 1 {
            prop_assert!((total - full).abs() < 1e-6);
        } else {
            prop_assert!(total >= full - 1e-6);
        }
    }

    #[test]
    fn minmax_cover_valid_and_never_worse_span_than_alg2(
        sensors in points(2..16),
        depots in points(1..4),
    ) {
        let n = sensors.len();
        let network = Network::new(sensors, depots);
        let all: Vec<usize> = (0..n).collect();
        let qt = q_rooted_tsp(network.dist(), &all, &network.depot_nodes(), 0);
        let alg2_span = qt
            .tours
            .iter()
            .map(|t| t.length(network.dist()))
            .fold(0.0f64, f64::max);
        let mm = min_max_cover(&network, &all, Routing::Doubling, 100);
        prop_assert!(mm.makespan <= alg2_span + 1e-6);
        // Coverage and assignment validity.
        let mut covered: Vec<usize> = mm
            .tours
            .iter()
            .flat_map(|t| t.nodes().iter().copied())
            .filter(|&v| v < n)
            .collect();
        covered.sort_unstable();
        prop_assert_eq!(covered, all);
        prop_assert!(mm.assignment.iter().all(|&a| a < network.q()));
        prop_assert!(mm.makespan <= mm.total + 1e-9);
    }

    #[test]
    fn all_routings_cover_exactly_the_terminals(
        sensors in points(1..20),
        depots in points(1..4),
    ) {
        let n = sensors.len();
        let network = Network::new(sensors, depots);
        let all: Vec<usize> = (0..n).collect();
        let roots = network.depot_nodes();
        for routing in [Routing::Doubling, Routing::Matching, Routing::Savings] {
            let qt = q_rooted_tsp_routed(network.dist(), &all, &roots, routing, 0);
            prop_assert_eq!(
                qt.covered_nodes(|v| v >= n),
                all.clone(),
                "routing {:?}", routing
            );
            for (l, t) in qt.tours.iter().enumerate() {
                prop_assert_eq!(t.start(), Some(roots[l]));
            }
            prop_assert!(qt.cost.is_finite() && qt.cost >= 0.0);
        }
    }

    #[test]
    fn matching_routing_within_doubling_bound(
        sensors in points(2..18),
        depots in points(1..3),
    ) {
        let n = sensors.len();
        let network = Network::new(sensors, depots);
        let all: Vec<usize> = (0..n).collect();
        let roots = network.depot_nodes();
        let forest = perpetuum_core::qmsf::q_rooted_msf(network.dist(), &all, &roots);
        let matched = q_rooted_tsp_routed(network.dist(), &all, &roots, Routing::Matching, 0);
        prop_assert!(matched.cost <= 2.0 * forest.weight + 1e-6);
        prop_assert!(matched.cost + 1e-6 >= forest.weight);
    }
}
