//! Property tests: power-of-two cycle classes are *stable* under small
//! rate perturbations — a cycle that moves by less than its distance to
//! the nearest class boundary never flips class. This is the invariant the
//! online controller's "class changed" replanning trigger relies on: noisy
//! telemetry inside the applicability band must cause zero planner calls.

use perpetuum_core::rounding::{partition_cycles, power_class};
use proptest::prelude::*;

/// The exact class band `[τ₁·2^k, τ₁·2^(k+1))` containing `tau`, computed
/// by the same repeated doubling as `power_class` so the boundaries agree
/// bit-for-bit with the implementation.
fn class_band(tau1: f64, tau: f64) -> (f64, f64) {
    let mut lo = tau1;
    while lo * 2.0 <= tau {
        lo *= 2.0;
    }
    (lo, lo * 2.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// A perturbation strictly smaller than the margin to the nearest
    /// boundary never changes `power_class`.
    #[test]
    fn class_stable_under_sub_margin_perturbation(
        tau1 in 0.5..20.0f64,
        ratio in 1.0..500.0f64,
        delta in -1.0..1.0f64,
    ) {
        let tau = tau1 * ratio;
        let k = power_class(tau1, tau);
        let (lo, hi) = class_band(tau1, tau);
        prop_assert!(lo <= tau && tau < hi, "band invariant: {lo} <= {tau} < {hi}");
        // Margin to the nearest boundary; shrink to stay strictly inside.
        let margin = (tau - lo).min(hi - tau);
        let perturbed = tau + delta * margin * 0.99;
        prop_assert_eq!(
            power_class(tau1, perturbed), k,
            "tau {} -> {} flipped class (band [{}, {}))", tau, perturbed, lo, hi
        );
    }

    /// Crossing the boundary *does* flip the class — the margin above is
    /// tight, not an artifact of a sloppy trigger.
    #[test]
    fn class_flips_exactly_at_the_boundary(
        tau1 in 0.5..20.0f64,
        k in 0u32..8,
    ) {
        // Doubling is exact in floating point, so the boundary itself is
        // representable and belongs to the upper class.
        let lo = tau1 * f64::powi(2.0, k as i32);
        prop_assert_eq!(power_class(tau1, lo), k as usize);
        let below = lo - lo * 1e-12;
        if k > 0 && below >= tau1 {
            prop_assert_eq!(power_class(tau1, below), (k - 1) as usize);
        }
    }

    /// Whole-partition stability: with τ₁ pinned by an unperturbed anchor
    /// sensor, perturbing every other cycle inside its own class band
    /// leaves `class_of` and the rounded cycles untouched.
    #[test]
    fn partition_classes_stable_inside_bands(
        tau1 in 0.5..10.0f64,
        ratios in prop::collection::vec(1.0..200.0f64, 1..24),
        deltas in prop::collection::vec(-1.0..1.0f64, 24),
    ) {
        let mut cycles = vec![tau1]; // anchor pins τ₁
        cycles.extend(ratios.iter().map(|r| tau1 * r));
        let before = partition_cycles(&cycles);

        let mut perturbed = vec![tau1];
        for (i, &tau) in cycles.iter().enumerate().skip(1) {
            let (lo, hi) = class_band(tau1, tau);
            let margin = (tau - lo).min(hi - tau);
            perturbed.push(tau + deltas[i - 1] * margin * 0.99);
        }
        let after = partition_cycles(&perturbed);

        prop_assert_eq!(&before.class_of, &after.class_of);
        prop_assert_eq!(&before.rounded, &after.rounded);
        prop_assert_eq!(before.k_max(), after.k_max());
    }
}
