//! Property-based tests for the scheduling algorithms.
//!
//! These verify the paper's structural claims on randomly generated
//! instances: Lemma 1 (q-rooted MSF optimality via the lower-bound /
//! feasibility sandwich), Theorem 1 (2-approximation of the q-rooted TSP),
//! Equation 1 (rounding bound), Lemma 2 (feasibility of Algorithm 3), and
//! feasibility of both the greedy baseline and variable-cycle replans.

use perpetuum_core::feasibility::check_series;
use perpetuum_core::greedy::{plan_greedy_fixed, GreedyConfig};
use perpetuum_core::mtd::{plan_min_total_distance, MtdConfig};
use perpetuum_core::network::{Instance, Network};
use perpetuum_core::qmsf::q_rooted_msf;
use perpetuum_core::qtsp::q_rooted_tsp;
use perpetuum_core::rounding::partition_cycles;
use perpetuum_core::var::{check_var_plan, replan_variable, VarInput};
use perpetuum_geom::Point2;
use proptest::prelude::*;

fn points(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Point2>> {
    prop::collection::vec((0.0..1000.0f64, 0.0..1000.0f64), n)
        .prop_map(|v| v.into_iter().map(|(x, y)| Point2::new(x, y)).collect())
}

fn cycles(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(1.0..50.0f64, n)
}

prop_compose! {
    fn instance()(sensors in points(1..24), depots in points(1..5))
        (cyc in cycles(sensors.len()), sensors in Just(sensors), depots in Just(depots))
        -> (Network, Vec<f64>)
    {
        (Network::new(sensors, depots), cyc)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn qmsf_weight_lower_bounds_qtsp_cost((network, _) in instance()) {
        let terminals: Vec<usize> = (0..network.n()).collect();
        let roots = network.depot_nodes();
        let forest = q_rooted_msf(network.dist(), &terminals, &roots);
        let tours = q_rooted_tsp(network.dist(), &terminals, &roots, 0);
        // Theorem 1 sandwich: w(MSF) ≤ w(tours) ≤ 2 w(MSF).
        prop_assert!(tours.cost + 1e-6 >= forest.weight);
        prop_assert!(tours.cost <= 2.0 * forest.weight + 1e-6);
        // Every tour starts at its own depot.
        for (l, t) in tours.tours.iter().enumerate() {
            prop_assert_eq!(t.start(), Some(roots[l]));
        }
        // Coverage is exact.
        prop_assert_eq!(tours.covered_nodes(|v| v >= network.n()), terminals);
    }

    #[test]
    fn rounding_eq1_and_divisibility((_, cyc) in instance()) {
        let p = partition_cycles(&cyc);
        for (i, &tau) in cyc.iter().enumerate() {
            // Equation (1): τ/2 < τ' ≤ τ.
            prop_assert!(p.rounded[i] <= tau + 1e-12);
            prop_assert!(p.rounded[i] > tau / 2.0 - 1e-12);
            // τ' is exactly 2^k τ_1.
            let ratio = p.rounded[i] / p.tau1;
            prop_assert!((ratio - ratio.round()).abs() < 1e-9);
            prop_assert!((ratio.round() as u64).is_power_of_two());
        }
    }

    #[test]
    fn mtd_plans_are_feasible((network, cyc) in instance(), horizon in 10.0..200.0f64) {
        let inst = Instance::new(network, cyc, horizon);
        let series = plan_min_total_distance(&inst, &MtdConfig::default());
        prop_assert!(check_series(&inst, &series).is_ok());
        // Dispatches strictly inside (0, T), in nondecreasing time order.
        let mut prev = 0.0;
        for d in series.dispatches() {
            prop_assert!(d.time > 0.0 && d.time < horizon);
            prop_assert!(d.time >= prev);
            prev = d.time;
        }
    }

    #[test]
    fn greedy_plans_are_feasible((network, cyc) in instance(), horizon in 10.0..200.0f64) {
        let tau_min = cyc.iter().cloned().fold(f64::INFINITY, f64::min);
        let inst = Instance::new(network, cyc, horizon);
        let series = plan_greedy_fixed(&inst, &GreedyConfig::paper_default(tau_min));
        prop_assert!(check_series(&inst, &series).is_ok());
    }

    #[test]
    fn mtd_charges_each_sensor_at_its_rounded_cadence(
        (network, cyc) in instance(),
        horizon in 50.0..150.0f64,
    ) {
        let inst = Instance::new(network, cyc.clone(), horizon);
        let p = partition_cycles(&cyc);
        let series = plan_min_total_distance(&inst, &MtdConfig::default());
        for i in 0..cyc.len() {
            let times = series.charge_times(i);
            for w in times.windows(2) {
                prop_assert!((w[1] - w[0] - p.rounded[i]).abs() < 1e-6,
                    "sensor {i} gap {} != rounded {}", w[1] - w[0], p.rounded[i]);
            }
        }
    }

    #[test]
    fn var_replans_are_feasible(
        (network, cyc) in instance(),
        fracs in prop::collection::vec(0.02..1.0f64, 24),
        now in 0.0..100.0f64,
        span in 10.0..200.0f64,
    ) {
        let residuals: Vec<f64> = cyc
            .iter()
            .zip(fracs.iter().cycle())
            .map(|(&c, &f)| c * f)
            .collect();
        let input = VarInput {
            network: &network,
            max_cycles: &cyc,
            residuals: &residuals,
            now,
            horizon: now + span,
            polish_rounds: 0,
        };
        let plan = replan_variable(&input);
        prop_assert!(check_var_plan(&input, &plan).is_ok());
        // Assigned cycles match Equation (1) against the inputs.
        for (i, &tau) in cyc.iter().enumerate() {
            prop_assert!(plan.assigned_cycles[i] <= tau + 1e-12);
            prop_assert!(plan.assigned_cycles[i] > tau / 2.0 - 1e-12);
        }
    }

    #[test]
    fn polish_preserves_feasibility_and_cost_bound(
        (network, cyc) in instance(),
        horizon in 20.0..100.0f64,
    ) {
        let inst = Instance::new(network, cyc, horizon);
        let plain = plan_min_total_distance(&inst, &MtdConfig::default());
        let polished = plan_min_total_distance(&inst, &MtdConfig { polish_rounds: 5, ..MtdConfig::default() });
        prop_assert!(check_series(&inst, &polished).is_ok());
        prop_assert!(polished.service_cost() <= plain.service_cost() + 1e-6);
    }
}
