//! **Algorithm 2** — the 2-approximate `q`-rooted TSP.
//!
//! Find `q` closed tours, one through each depot, jointly covering a given
//! sensor set, of minimum total length. The paper's 2-approximation:
//!
//! 1. compute the optimal `q`-rooted MSF (Algorithm 1, [`crate::qmsf`]),
//! 2. double each tree's edges, extract an Euler circuit from the depot,
//!    and shortcut repeated nodes.
//!
//! The MSF weight lower-bounds the optimal tour cost (drop one edge per
//! optimal tour and you get a feasible forest), and doubling at most
//! doubles it — Theorem 1.
//!
//! The optional *polish* pass (2-opt + Or-opt on each tour) is **not** part
//! of the paper's algorithm; it exists for the tour-polish ablation bench
//! and never breaks the approximation guarantee because local search only
//! shortens tours.

use crate::qmsf::{q_rooted_msf_src, ForestEdge};
use perpetuum_graph::euler::{double_edges, euler_circuit};
use perpetuum_graph::tsp_christofides::tour_from_tree_matched;
use perpetuum_graph::tsp_heur::polish;
use perpetuum_graph::tsp_savings::savings_tour;
use perpetuum_graph::{DistMatrix, DistSource, Metric, Tour};

/// How each MSF tree is turned into a closed tour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Routing {
    /// The paper's Algorithm 2: double the tree, Euler circuit, shortcut.
    /// Carries the provable 2× bound.
    #[default]
    Doubling,
    /// Christofides-style: tree + greedy minimum matching over its
    /// odd-degree vertices, Euler circuit, shortcut. Empirically shorter;
    /// still within the doubling bound (a matching never outweighs the
    /// tree). Routing-ablation only — not part of the paper's algorithm.
    Matching,
    /// Clarke–Wright savings construction over each MSF group's sensor
    /// set (only the group membership comes from Algorithm 1; the tour is
    /// built from scratch). No approximation guarantee; routing-ablation
    /// only.
    Savings,
}

/// The `q` closed tours produced by Algorithm 2.
#[derive(Debug, Clone)]
pub struct QTours {
    /// `tours[l]` starts at root `l` (as a node id of the host graph). A
    /// charger with nothing to do gets a singleton tour of its depot.
    pub tours: Vec<Tour>,
    /// `tour_lengths[l]` — length of `tours[l]`.
    pub tour_lengths: Vec<f64>,
    /// Total length of all tours (the sum of `tour_lengths`).
    pub cost: f64,
}

impl QTours {
    /// Recomputes the total length (used by tests to cross-check `cost`).
    pub fn total_length<M: Metric>(&self, dist: &M) -> f64 {
        self.tours.iter().map(|t| t.length(dist)).sum()
    }

    /// All sensor node ids covered, ascending. `roots` is consulted to
    /// exclude depots.
    pub fn covered_nodes(&self, is_root: impl Fn(usize) -> bool) -> Vec<usize> {
        let mut v: Vec<usize> = self
            .tours
            .iter()
            .flat_map(|t| t.nodes().iter().copied())
            .filter(|&n| !is_root(n))
            .collect();
        v.sort_unstable();
        v
    }
}

/// **Algorithm 2** on a host graph: closed tours over `terminals`, one per
/// root in `roots` (node ids of `dist`). Set `polish_rounds > 0` to run the
/// ablation-only local-search pass on each tour.
///
/// ```
/// use perpetuum_core::qtsp::q_rooted_tsp;
/// use perpetuum_geom::Point2;
/// use perpetuum_graph::DistMatrix;
///
/// // Nodes 0–2 are sensors, 3 and 4 are depots.
/// let dist = DistMatrix::from_points(&[
///     Point2::new(10.0, 0.0),
///     Point2::new(20.0, 0.0),
///     Point2::new(90.0, 0.0),
///     Point2::new(0.0, 0.0),   // depot A
///     Point2::new(100.0, 0.0), // depot B
/// ]);
/// let tours = q_rooted_tsp(&dist, &[0, 1, 2], &[3, 4], 0);
/// assert_eq!(tours.tours.len(), 2);
/// // Near sensors go to depot A, the far one to depot B.
/// assert_eq!(tours.tours[0].nodes(), &[3, 0, 1]);
/// assert_eq!(tours.tours[1].nodes(), &[4, 2]);
/// assert!((tours.cost - (40.0 + 20.0)).abs() < 1e-9);
/// ```
pub fn q_rooted_tsp(
    dist: &DistMatrix,
    terminals: &[usize],
    roots: &[usize],
    polish_rounds: usize,
) -> QTours {
    q_rooted_tsp_routed(dist, terminals, roots, Routing::Doubling, polish_rounds)
}

/// [`q_rooted_tsp`] with an explicit tree-to-tour [`Routing`] method.
pub fn q_rooted_tsp_routed(
    dist: &DistMatrix,
    terminals: &[usize],
    roots: &[usize],
    routing: Routing,
    polish_rounds: usize,
) -> QTours {
    q_rooted_tsp_routed_src(&DistSource::dense(dist), terminals, roots, routing, polish_rounds)
}

/// [`q_rooted_tsp_routed`] over a [`DistSource`]: the planning entry point
/// that never forces a dense matrix. `Dense` sources reproduce the classic
/// pipeline exactly; `Points` sources use the sparse super-root MSF
/// ([`crate::qmsf::q_rooted_msf_sparse`]) and compute distances on demand.
pub fn q_rooted_tsp_src(
    src: &DistSource<'_>,
    terminals: &[usize],
    roots: &[usize],
    polish_rounds: usize,
) -> QTours {
    q_rooted_tsp_routed_src(src, terminals, roots, Routing::Doubling, polish_rounds)
}

/// [`q_rooted_tsp_routed`] over a [`DistSource`], with per-root tours
/// built in parallel.
///
/// Each root's tour (edge mapping, Euler circuit / matching / savings,
/// polish) depends only on its own tree, so the per-root computations are
/// embarrassingly parallel; results are collected in root order and the
/// cost is summed in that same order, making the output **bit-identical**
/// to the sequential loop for any worker count.
pub fn q_rooted_tsp_routed_src(
    src: &DistSource<'_>,
    terminals: &[usize],
    roots: &[usize],
    routing: Routing,
    polish_rounds: usize,
) -> QTours {
    let workers = default_tour_workers(terminals.len(), roots.len());
    q_rooted_tsp_routed_src_workers(src, terminals, roots, routing, polish_rounds, workers)
}

/// The worker count the parallel per-root tour build defaults to.
///
/// Thread spawn costs ~tens of µs; below [`PAR_TERMINALS_THRESHOLD`]
/// terminals the whole per-root build is cheaper than that, so stay
/// sequential (the result is identical either way — see
/// [`q_rooted_tsp_routed_src`]).
pub(crate) fn default_tour_workers(terminal_count: usize, root_count: usize) -> usize {
    const PAR_TERMINALS_THRESHOLD: usize = 256;
    if terminal_count >= PAR_TERMINALS_THRESHOLD {
        perpetuum_par::default_workers(root_count)
    } else {
        1
    }
}

/// [`q_rooted_tsp_src`] that also returns the underlying Algorithm-1
/// forest — the seeding hook for incremental replanning
/// ([`crate::incremental`]), which must cache the forest a plan's tours
/// were built from so later migrations can splice it instead of re-running
/// Prim. Bit-identical to [`q_rooted_tsp_src`] (same forest, same per-root
/// build).
pub fn q_rooted_tsp_with_forest_src(
    src: &DistSource<'_>,
    terminals: &[usize],
    roots: &[usize],
    polish_rounds: usize,
) -> (QTours, crate::qmsf::RootedForest) {
    let forest = q_rooted_msf_src(src, terminals, roots);
    let workers = default_tour_workers(terminals.len(), roots.len());
    let qt = tours_for_forest_src(
        src,
        &forest,
        terminals,
        roots,
        Routing::Doubling,
        polish_rounds,
        workers,
    );
    (qt, forest)
}

/// [`q_rooted_tsp_routed_src`] with an explicit worker count — the parity
/// tests use it to pin sequential vs parallel runs against each other.
#[doc(hidden)]
pub fn q_rooted_tsp_routed_src_workers(
    src: &DistSource<'_>,
    terminals: &[usize],
    roots: &[usize],
    routing: Routing,
    polish_rounds: usize,
    workers: usize,
) -> QTours {
    debug_assert!(
        terminals.iter().all(|t| !roots.contains(t)),
        "terminals and roots must be disjoint"
    );
    let forest = q_rooted_msf_src(src, terminals, roots);
    tours_for_forest_src(src, &forest, terminals, roots, routing, polish_rounds, workers)
}

/// The tour-construction half of Algorithm 2: turns an already-computed
/// `q`-rooted forest into per-root closed tours. Split out of
/// [`q_rooted_tsp_routed_src_workers`] so the incremental replanner can
/// re-route a spliced forest without recomputing it.
pub fn tours_for_forest_src(
    src: &DistSource<'_>,
    forest: &crate::qmsf::RootedForest,
    terminals: &[usize],
    roots: &[usize],
    routing: Routing,
    polish_rounds: usize,
    workers: usize,
) -> QTours {
    let groups = forest.terminals_by_root();
    let node_count = src.len();

    let build_tour = |r: usize| -> Tour {
        let root_node = roots[r];
        let edges: Vec<(usize, usize)> = forest.trees[r]
            .iter()
            .map(|e| match *e {
                ForestEdge::TermTerm(a, b) => (terminals[a], terminals[b]),
                ForestEdge::RootTerm(_, t) => (root_node, terminals[t]),
            })
            .collect();
        if edges.is_empty() {
            return Tour::singleton(root_node);
        }
        let mut tour = match routing {
            Routing::Doubling => tour_from_tree_doubling(&edges, root_node),
            Routing::Matching => tour_from_tree_matched(src, node_count, &edges, root_node),
            Routing::Savings => {
                let customers: Vec<usize> = groups[r].iter().map(|&t| terminals[t]).collect();
                savings_tour(src, root_node, &customers)
            }
        };
        debug_assert_eq!(tour.start(), Some(root_node));
        if polish_rounds > 0 {
            polish(&mut tour, src, polish_rounds);
        }
        tour
    };

    let tours = perpetuum_par::par_map_indexed(roots.len(), workers, build_tour);
    let tour_lengths: Vec<f64> = tours.iter().map(|t| t.length(src)).collect();
    let cost = tour_lengths.iter().sum();
    QTours { tours, tour_lengths, cost }
}

/// The paper's tree-to-tour step for a single root: double the tree's
/// edges, walk an Euler circuit from the root, shortcut repeated nodes.
///
/// `edges` are the tree's edges in *host node-id* space and must form one
/// tree containing `root_node`; an empty edge list yields a singleton tour.
/// This is the exact Doubling arm of [`q_rooted_tsp_routed_src`], exposed
/// so the incremental replanner can rebuild a single root's tour from a
/// spliced forest tree (its fallback when warm-start repair loses to a
/// fresh construction).
pub fn tour_from_tree_doubling(edges: &[(usize, usize)], root_node: usize) -> Tour {
    if edges.is_empty() {
        return Tour::singleton(root_node);
    }
    // Relabel this root's tree onto a compact node space before the Euler
    // walk: the walk only touches the tree's own nodes, but `euler_circuit`
    // allocates adjacency for every node id below its bound. In-sim replans
    // route small batches through here every polling tick, and paying
    // O(network) per root would dwarf the batch itself. The relabeling is
    // an isomorphism that preserves edge order, so the circuit (and hence
    // the tour) is unchanged.
    let mut locals: Vec<usize> = vec![root_node];
    let mut index = std::collections::HashMap::with_capacity(edges.len() + 1);
    index.insert(root_node, 0usize);
    let compact: Vec<(usize, usize)> = edges
        .iter()
        .map(|&(u, v)| {
            (compact_id(u, &mut index, &mut locals), compact_id(v, &mut index, &mut locals))
        })
        .collect();
    let doubled = double_edges(&compact);
    let circuit = euler_circuit(locals.len(), &doubled, 0)
        .expect("a doubled tree always has an Euler circuit from its root");
    let walk: Vec<usize> = circuit.iter().map(|&v| locals[v]).collect();
    Tour::shortcut(&walk)
}

/// Dense-index helper for the Euler relabeling above: the id of `x` in the
/// compact space, allocating the next one on first sight.
fn compact_id(
    x: usize,
    index: &mut std::collections::HashMap<usize, usize>,
    locals: &mut Vec<usize>,
) -> usize {
    *index.entry(x).or_insert_with(|| {
        locals.push(x);
        locals.len() - 1
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qmsf::q_rooted_msf;
    use perpetuum_geom::Point2;
    use perpetuum_graph::tsp_exact::held_karp;

    fn host(sensors: &[Point2], depots: &[Point2]) -> DistMatrix {
        let all: Vec<Point2> = sensors.iter().chain(depots.iter()).copied().collect();
        DistMatrix::from_points(&all)
    }

    #[test]
    fn empty_terminals_gives_singleton_tours() {
        let dist = host(&[], &[Point2::ORIGIN, Point2::new(1.0, 1.0)]);
        let qt = q_rooted_tsp(&dist, &[], &[0, 1], 0);
        assert_eq!(qt.cost, 0.0);
        assert_eq!(qt.tours.len(), 2);
        assert!(qt.tours.iter().all(|t| t.len() == 1));
    }

    #[test]
    fn single_sensor_out_and_back() {
        let dist = host(&[Point2::new(3.0, 4.0)], &[Point2::ORIGIN]);
        let qt = q_rooted_tsp(&dist, &[0], &[1], 0);
        assert!((qt.cost - 10.0).abs() < 1e-9);
        assert_eq!(qt.tours[0].nodes(), &[1, 0]);
    }

    #[test]
    fn tours_start_at_their_roots_and_cover_terminals() {
        let sensors: Vec<Point2> = (0..10)
            .map(|i| Point2::new((i * 13 % 7) as f64 * 30.0, (i * 7 % 5) as f64 * 40.0))
            .collect();
        let depots = vec![Point2::new(0.0, 0.0), Point2::new(200.0, 200.0)];
        let dist = host(&sensors, &depots);
        let terminals: Vec<usize> = (0..10).collect();
        let roots = vec![10, 11];
        let qt = q_rooted_tsp(&dist, &terminals, &roots, 0);
        for (l, t) in qt.tours.iter().enumerate() {
            assert_eq!(t.start(), Some(roots[l]));
        }
        assert_eq!(qt.covered_nodes(|n| n >= 10), terminals);
        assert!((qt.cost - qt.total_length(&dist)).abs() < 1e-9);
    }

    #[test]
    fn cost_within_twice_msf_weight() {
        let sensors: Vec<Point2> = (0..15)
            .map(|i| Point2::new(((i * 37) % 101) as f64 * 9.0, ((i * 53) % 97) as f64 * 10.0))
            .collect();
        let depots =
            vec![Point2::new(100.0, 100.0), Point2::new(800.0, 100.0), Point2::new(450.0, 800.0)];
        let dist = host(&sensors, &depots);
        let terminals: Vec<usize> = (0..15).collect();
        let roots = vec![15, 16, 17];
        let forest = q_rooted_msf(&dist, &terminals, &roots);
        let qt = q_rooted_tsp(&dist, &terminals, &roots, 0);
        assert!(qt.cost <= 2.0 * forest.weight + 1e-9);
        // MSF also lower-bounds the tour cost itself.
        assert!(qt.cost >= forest.weight - 1e-9);
    }

    #[test]
    fn q1_within_twice_exact_optimum() {
        // With q = 1 the problem is plain TSP; compare against Held–Karp.
        for seed in 0..4u64 {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let sensors: Vec<Point2> = (0..9)
                .map(|_| Point2::new(rng.gen_range(0.0..500.0), rng.gen_range(0.0..500.0)))
                .collect();
            let depot = vec![Point2::new(250.0, 250.0)];
            let dist = host(&sensors, &depot);
            let terminals: Vec<usize> = (0..9).collect();
            let qt = q_rooted_tsp(&dist, &terminals, &[9], 0);
            // Full-graph TSP (all 10 nodes) is the q=1 optimum.
            let (_, opt) = held_karp(&dist);
            assert!(qt.cost <= 2.0 * opt + 1e-9, "seed {seed}: approx {} vs opt {opt}", qt.cost);
            assert!(qt.cost >= opt - 1e-9);
        }
    }

    #[test]
    fn polish_never_worsens() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let sensors: Vec<Point2> = (0..25)
            .map(|_| Point2::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0)))
            .collect();
        let depots = vec![Point2::new(500.0, 500.0), Point2::new(0.0, 0.0)];
        let dist = host(&sensors, &depots);
        let terminals: Vec<usize> = (0..25).collect();
        let plain = q_rooted_tsp(&dist, &terminals, &[25, 26], 0);
        let polished = q_rooted_tsp(&dist, &terminals, &[25, 26], 20);
        assert!(polished.cost <= plain.cost + 1e-9);
        // Polishing preserves coverage and roots.
        assert_eq!(polished.covered_nodes(|n| n >= 25), terminals);
        assert_eq!(polished.tours[0].start(), Some(25));
        assert_eq!(polished.tours[1].start(), Some(26));
    }

    #[test]
    fn matching_routing_covers_and_stays_within_doubling_bound() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let sensors: Vec<Point2> = (0..20)
            .map(|_| Point2::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0)))
            .collect();
        let depots = vec![Point2::new(500.0, 500.0), Point2::new(0.0, 0.0)];
        let dist = host(&sensors, &depots);
        let terminals: Vec<usize> = (0..20).collect();
        let roots = vec![20, 21];
        let forest = q_rooted_msf(&dist, &terminals, &roots);
        let matched = q_rooted_tsp_routed(&dist, &terminals, &roots, Routing::Matching, 0);
        assert_eq!(matched.covered_nodes(|n| n >= 20), terminals);
        assert!(matched.cost <= 2.0 * forest.weight + 1e-9);
        for (l, t) in matched.tours.iter().enumerate() {
            assert_eq!(t.start(), Some(roots[l]));
        }
    }

    #[test]
    fn savings_routing_covers_and_competes() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let sensors: Vec<Point2> = (0..25)
            .map(|_| Point2::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0)))
            .collect();
        let depots = vec![Point2::new(500.0, 500.0), Point2::new(100.0, 100.0)];
        let dist = host(&sensors, &depots);
        let terminals: Vec<usize> = (0..25).collect();
        let roots = vec![25, 26];
        let saved = q_rooted_tsp_routed(&dist, &terminals, &roots, Routing::Savings, 0);
        assert_eq!(saved.covered_nodes(|n| n >= 25), terminals);
        for (l, t) in saved.tours.iter().enumerate() {
            assert_eq!(t.start(), Some(roots[l]));
        }
        // No guarantee, but it should at least beat the star bound.
        let star: f64 = terminals
            .iter()
            .map(|&s| 2.0 * roots.iter().map(|&r| dist.get(s, r)).fold(f64::INFINITY, f64::min))
            .sum();
        assert!(saved.cost <= star + 1e-9);
    }

    #[test]
    fn matching_routing_beats_doubling_on_average() {
        use rand::{Rng, SeedableRng};
        let mut matched_total = 0.0;
        let mut doubled_total = 0.0;
        for seed in 0..8u64 {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed + 300);
            let sensors: Vec<Point2> = (0..30)
                .map(|_| Point2::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0)))
                .collect();
            let depots = vec![Point2::new(500.0, 500.0)];
            let dist = host(&sensors, &depots);
            let terminals: Vec<usize> = (0..30).collect();
            matched_total +=
                q_rooted_tsp_routed(&dist, &terminals, &[30], Routing::Matching, 0).cost;
            doubled_total += q_rooted_tsp(&dist, &terminals, &[30], 0).cost;
        }
        assert!(
            matched_total < doubled_total,
            "matched {matched_total} vs doubled {doubled_total}"
        );
    }

    #[test]
    fn parallel_per_root_tours_are_bit_identical() {
        // Above the parallel threshold, any worker count must reproduce the
        // sequential result exactly — same tours, same cost bits.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(41);
        let n = 300;
        let sensors: Vec<Point2> = (0..n)
            .map(|_| Point2::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0)))
            .collect();
        let depots = vec![
            Point2::new(100.0, 100.0),
            Point2::new(900.0, 100.0),
            Point2::new(500.0, 900.0),
            Point2::new(500.0, 500.0),
        ];
        let dist = host(&sensors, &depots);
        let src = DistSource::dense(&dist);
        let terminals: Vec<usize> = (0..n).collect();
        let roots: Vec<usize> = (n..n + 4).collect();
        for routing in [Routing::Doubling, Routing::Matching, Routing::Savings] {
            let seq = q_rooted_tsp_routed_src_workers(&src, &terminals, &roots, routing, 3, 1);
            for workers in [2, 4, 7] {
                let par =
                    q_rooted_tsp_routed_src_workers(&src, &terminals, &roots, routing, 3, workers);
                assert_eq!(seq.cost.to_bits(), par.cost.to_bits(), "{routing:?}/{workers}");
                for (a, b) in seq.tours.iter().zip(&par.tours) {
                    assert_eq!(a.nodes(), b.nodes(), "{routing:?}/{workers}");
                }
            }
        }
    }

    #[test]
    fn sparse_source_matches_dense_pipeline() {
        // A Points source solves the same MSF (weight parity is asserted
        // exactly in qmsf::tests), but its Prim emits tree edges in a
        // different order, so Euler shortcutting can pick a different —
        // equally valid — tour. Assert the actual guarantees: identical
        // coverage, the 2×MSF bound, and costs within a few percent.
        use rand::{Rng, SeedableRng};
        for seed in 0..5u64 {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed + 900);
            let n = 60;
            let sensors: Vec<Point2> = (0..n)
                .map(|_| Point2::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0)))
                .collect();
            let depots = [Point2::new(250.0, 250.0), Point2::new(750.0, 750.0)];
            let all: Vec<Point2> = sensors.iter().chain(depots.iter()).copied().collect();
            let dist = DistMatrix::from_points(&all);
            let terminals: Vec<usize> = (0..n).collect();
            let roots = vec![n, n + 1];
            let dense = q_rooted_tsp_src(&DistSource::dense(&dist), &terminals, &roots, 2);
            let sparse = q_rooted_tsp_src(&DistSource::points(&all), &terminals, &roots, 2);
            assert_eq!(
                dense.covered_nodes(|v| v >= n),
                sparse.covered_nodes(|v| v >= n),
                "seed {seed}"
            );
            let msf = q_rooted_msf(&dist, &terminals, &roots);
            for (label, qt) in [("dense", &dense), ("sparse", &sparse)] {
                assert!(qt.cost <= 2.0 * msf.weight + 1e-9, "seed {seed} {label}");
                assert!(qt.cost >= msf.weight - 1e-9, "seed {seed} {label}");
            }
            let rel = (dense.cost - sparse.cost).abs() / dense.cost;
            assert!(
                rel < 0.25,
                "seed {seed}: dense {} vs sparse {} (rel {rel})",
                dense.cost,
                sparse.cost
            );
        }
    }

    #[test]
    fn far_sensor_goes_to_near_depot() {
        // One sensor next to depot 1 must not be toured by depot 0.
        let dist =
            host(&[Point2::new(99.0, 0.0)], &[Point2::new(0.0, 0.0), Point2::new(100.0, 0.0)]);
        let qt = q_rooted_tsp(&dist, &[0], &[1, 2], 0);
        assert_eq!(qt.tours[0].len(), 1);
        assert_eq!(qt.tours[1].nodes(), &[2, 0]);
        assert!((qt.cost - 2.0).abs() < 1e-9);
    }
}
