//! Power-of-two cycle rounding (Section V.A).
//!
//! Given maximum charging cycles `τ_1 ≤ τ_2 ≤ … ≤ τ_n`, Algorithm 3 assigns
//! each sensor the rounded cycle `τ'_i = 2^k · τ_1` where `k` is the largest
//! integer with `2^k · τ_1 ≤ τ_i`. Equation (1) of the paper shows
//! `τ'_i > τ_i / 2`, so rounding costs at most a factor two of charging
//! frequency, and all rounded cycles divide each other — the property the
//! whole schedule construction rests on.
//!
//! The paper writes `K = ⌈log₂(τ_n/τ_1)⌉` but also `V_k ∋ v_i iff
//! 2^k τ_1 ≤ τ_i < 2^(k+1) τ_1` and `τ'_n = 2^K τ_1`; the two are only
//! consistent when `τ_n/τ_1` is a power of two. We take `K` to be the class
//! of the *largest* cycle (`K = ⌊log₂(τ_n/τ_1)⌋`), which keeps `V_K`
//! non-empty and `τ'_n = 2^K τ_1` exactly, and never weakens Lemma 3.

use serde::{Deserialize, Serialize};

// The class computation itself lives in `perpetuum-client` (the `no_std`
// sensor-side crate) so sensors and the base station share one definition;
// re-exported here to keep the historical public path.
pub use perpetuum_client::power_class;

/// The sensor-class partition `V_0, …, V_K` and rounded cycles of
/// Section V.A.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CyclePartition {
    /// The smallest maximum charging cycle, `τ_1` (the base interval).
    pub tau1: f64,
    /// Class index per sensor: sensor `i` is in `V_{class_of[i]}`.
    pub class_of: Vec<usize>,
    /// Rounded cycle `τ'_i = 2^{class_of[i]} · τ_1` per sensor.
    pub rounded: Vec<f64>,
    /// `classes[k]` — sensors of `V_k`, ascending. Length `K + 1`.
    pub classes: Vec<Vec<usize>>,
}

impl CyclePartition {
    /// The largest class index `K`.
    pub fn k_max(&self) -> usize {
        self.classes.len() - 1
    }

    /// The largest rounded cycle `τ'_n = 2^K · τ_1` — the super-period of
    /// the schedule.
    pub fn super_period(&self) -> f64 {
        self.tau1 * 2f64.powi(self.k_max() as i32)
    }

    /// Cumulative class `D_k = V_0 ∪ … ∪ V_k` as sorted sensor indices —
    /// exactly the sensor set of a scheduling whose dispatch index is
    /// divisible by `2^k` (and no higher power of two ≤ `2^K`).
    pub fn cumulative(&self, k: usize) -> Vec<usize> {
        let mut v: Vec<usize> = self.classes[..=k].iter().flatten().copied().collect();
        v.sort_unstable();
        v
    }
}

/// Partitions `cycles` into the classes `V_0 … V_K` (Section V.A).
///
/// ```
/// let p = perpetuum_core::rounding::partition_cycles(&[1.0, 3.0, 5.0, 50.0]);
/// assert_eq!(p.rounded, vec![1.0, 2.0, 4.0, 32.0]); // τ' = 2^k τ_1
/// assert_eq!(p.k_max(), 5);
/// assert_eq!(p.super_period(), 32.0);
/// ```
///
/// # Panics
/// Panics on an empty slice or non-positive cycles.
pub fn partition_cycles(cycles: &[f64]) -> CyclePartition {
    assert!(!cycles.is_empty(), "cannot partition zero sensors");
    assert!(cycles.iter().all(|&t| t > 0.0 && t.is_finite()), "cycles must be positive and finite");
    let tau1 = cycles.iter().cloned().fold(f64::INFINITY, f64::min);
    let class_of: Vec<usize> = cycles.iter().map(|&t| power_class(tau1, t)).collect();
    let k_max = class_of.iter().copied().max().unwrap();
    let mut classes = vec![Vec::new(); k_max + 1];
    for (i, &k) in class_of.iter().enumerate() {
        classes[k].push(i);
    }
    let rounded: Vec<f64> = class_of.iter().map(|&k| tau1 * 2f64.powi(k as i32)).collect();
    CyclePartition { tau1, class_of, rounded, classes }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_class_basics() {
        assert_eq!(power_class(1.0, 1.0), 0);
        assert_eq!(power_class(1.0, 1.99), 0);
        assert_eq!(power_class(1.0, 2.0), 1);
        assert_eq!(power_class(1.0, 3.0), 1);
        assert_eq!(power_class(1.0, 4.0), 2);
        assert_eq!(power_class(1.0, 50.0), 5);
        assert_eq!(power_class(2.5, 10.0), 2);
    }

    #[test]
    fn power_class_exact_boundaries() {
        // 2^k multiples land exactly in class k, no floating-point slop.
        for k in 0..40usize {
            let tau = (1u64 << k) as f64;
            assert_eq!(power_class(1.0, tau), k, "tau = 2^{k}");
            assert_eq!(power_class(1.0, tau * 1.0000001), k);
        }
    }

    #[test]
    #[should_panic(expected = "tau1 <= tau")]
    fn power_class_rejects_small_tau() {
        power_class(2.0, 1.0);
    }

    #[test]
    fn partition_small_example() {
        // τ = [1, 1.5, 2, 3, 4, 50]: classes 0,0,1,1,2,5.
        let p = partition_cycles(&[1.0, 1.5, 2.0, 3.0, 4.0, 50.0]);
        assert_eq!(p.tau1, 1.0);
        assert_eq!(p.class_of, vec![0, 0, 1, 1, 2, 5]);
        assert_eq!(p.k_max(), 5);
        assert_eq!(p.rounded, vec![1.0, 1.0, 2.0, 2.0, 4.0, 32.0]);
        assert_eq!(p.classes[0], vec![0, 1]);
        assert_eq!(p.classes[1], vec![2, 3]);
        assert_eq!(p.classes[2], vec![4]);
        assert!(p.classes[3].is_empty());
        assert!(p.classes[4].is_empty());
        assert_eq!(p.classes[5], vec![5]);
        assert_eq!(p.super_period(), 32.0);
    }

    #[test]
    fn equation_1_bound_holds() {
        // τ'_i ≤ τ_i and τ'_i > τ_i / 2 for a spread of cycles.
        let cycles: Vec<f64> = (1..200).map(|i| 1.0 + (i as f64) * 0.37).collect();
        let p = partition_cycles(&cycles);
        for (i, &tau) in cycles.iter().enumerate() {
            assert!(p.rounded[i] <= tau + 1e-12, "sensor {i}");
            assert!(p.rounded[i] > tau / 2.0 - 1e-12, "sensor {i}");
        }
    }

    #[test]
    fn rounded_cycles_divide_each_other() {
        let cycles = [3.0, 7.0, 12.0, 30.0, 95.0];
        let p = partition_cycles(&cycles);
        let mut r = p.rounded.clone();
        r.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for w in r.windows(2) {
            let ratio = w[1] / w[0];
            assert!((ratio - ratio.round()).abs() < 1e-12, "{} / {}", w[1], w[0]);
            assert!((ratio.round() as u64).is_power_of_two() || ratio == 1.0);
        }
    }

    #[test]
    fn uniform_cycles_single_class() {
        let p = partition_cycles(&[5.0; 8]);
        assert_eq!(p.k_max(), 0);
        assert_eq!(p.classes[0].len(), 8);
        assert_eq!(p.super_period(), 5.0);
        assert!(p.rounded.iter().all(|&r| r == 5.0));
    }

    #[test]
    fn cumulative_sets_grow() {
        let p = partition_cycles(&[1.0, 2.0, 4.0, 8.0]);
        assert_eq!(p.cumulative(0), vec![0]);
        assert_eq!(p.cumulative(1), vec![0, 1]);
        assert_eq!(p.cumulative(2), vec![0, 1, 2]);
        assert_eq!(p.cumulative(3), vec![0, 1, 2, 3]);
    }

    #[test]
    fn single_sensor() {
        let p = partition_cycles(&[7.5]);
        assert_eq!(p.k_max(), 0);
        assert_eq!(p.rounded, vec![7.5]);
        assert_eq!(p.super_period(), 7.5);
    }

    #[test]
    #[should_panic(expected = "zero sensors")]
    fn rejects_empty() {
        partition_cycles(&[]);
    }
}
