//! Charging schedulings and schedule series (Section III.B).
//!
//! A *charging scheduling* `(C_j, t_j)` dispatches all `q` chargers at time
//! `t_j` on the closed tours of `C_j`. Because Algorithm 3 reuses the same
//! `K + 1` distinct tour sets for hundreds of dispatch times, a
//! [`ScheduleSeries`] stores tour sets once and lets dispatches reference
//! them by index — the service cost of a 1000-dispatch plan costs `O(1)`
//! per dispatch to account, not `O(n)`.

use perpetuum_graph::{Metric, Tour};
use serde::{Deserialize, Serialize};

use crate::qtsp::QTours;

/// The `q` closed tours of one charging scheduling, plus cached per-tour
/// lengths, total cost and covered-sensor membership.
///
/// Lengths are cached at construction so that dispatch accounting (the
/// simulation engine charges every dispatch's travel to its chargers) is
/// `O(q)` per dispatch instead of re-walking every tour against the
/// distance metric.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TourSet {
    tours: Vec<Tour>,
    /// `tour_lengths[l]` — length of `tours[l]`; `cost` is their sum.
    tour_lengths: Vec<f64>,
    cost: f64,
    /// Sorted node ids of covered sensors (depots excluded).
    sensors: Vec<usize>,
}

impl TourSet {
    /// Builds a tour set from raw tours.
    ///
    /// `is_depot` distinguishes depot nodes so the sensor membership cache
    /// excludes them; `dist` is used to compute the per-tour lengths.
    pub fn new<M: Metric>(tours: Vec<Tour>, dist: &M, is_depot: impl Fn(usize) -> bool) -> Self {
        let tour_lengths: Vec<f64> = tours.iter().map(|t| t.length(dist)).collect();
        let cost = tour_lengths.iter().sum();
        let mut sensors: Vec<usize> = tours
            .iter()
            .flat_map(|t| t.nodes().iter().copied())
            .filter(|&v| !is_depot(v))
            .collect();
        sensors.sort_unstable();
        sensors.dedup();
        Self { tours, tour_lengths, cost, sensors }
    }

    /// Converts the output of Algorithm 2 into a tour set (per-tour lengths
    /// and the cost are taken from the solver, which already measured them).
    pub fn from_qtours(qt: QTours, is_depot: impl Fn(usize) -> bool) -> Self {
        let mut sensors: Vec<usize> = qt
            .tours
            .iter()
            .flat_map(|t| t.nodes().iter().copied())
            .filter(|&v| !is_depot(v))
            .collect();
        sensors.sort_unstable();
        sensors.dedup();
        Self { tours: qt.tours, tour_lengths: qt.tour_lengths, cost: qt.cost, sensors }
    }

    /// The `q` tours (singleton tours for idle chargers).
    pub fn tours(&self) -> &[Tour] {
        &self.tours
    }

    /// Cached length of each tour, in tour order (`cost` is the sum).
    pub fn tour_lengths(&self) -> &[f64] {
        &self.tour_lengths
    }

    /// Total travelled distance of this scheduling.
    pub fn cost(&self) -> f64 {
        self.cost
    }

    /// Covered sensor node ids, sorted ascending.
    pub fn sensors(&self) -> &[usize] {
        &self.sensors
    }

    /// True when the scheduling charges `sensor`.
    pub fn contains_sensor(&self, sensor: usize) -> bool {
        self.sensors.binary_search(&sensor).is_ok()
    }

    /// True when no sensor is covered (all chargers idle).
    pub fn is_idle(&self) -> bool {
        self.sensors.is_empty()
    }
}

/// One dispatch: the tour set `set` (an index into the series) executed at
/// `time`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Dispatch {
    /// Dispatch time `t_j ∈ (0, T)` — or `[0, T)` for the variable-cycle
    /// repair scheduling `(C'_0, t)`.
    pub time: f64,
    /// Index into [`ScheduleSeries::sets`].
    pub set: usize,
}

/// A complete series of charging schedulings over the monitoring period.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ScheduleSeries {
    sets: Vec<TourSet>,
    dispatches: Vec<Dispatch>,
}

impl ScheduleSeries {
    /// An empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a tour set, returning its index.
    pub fn add_set(&mut self, set: TourSet) -> usize {
        self.sets.push(set);
        self.sets.len() - 1
    }

    /// Appends a dispatch of set `set` at `time`.
    ///
    /// # Panics
    /// Panics when `set` is out of range or `time` is not finite.
    pub fn push_dispatch(&mut self, time: f64, set: usize) {
        assert!(set < self.sets.len(), "unknown tour set {set}");
        assert!(time.is_finite() && time >= 0.0, "bad dispatch time {time}");
        self.dispatches.push(Dispatch { time, set });
    }

    /// The registered tour sets.
    pub fn sets(&self) -> &[TourSet] {
        &self.sets
    }

    /// All dispatches in insertion order (the planners insert in time
    /// order; [`ScheduleSeries::sort_by_time`] restores it otherwise).
    pub fn dispatches(&self) -> &[Dispatch] {
        &self.dispatches
    }

    /// Stable-sorts dispatches by time.
    pub fn sort_by_time(&mut self) {
        self.dispatches
            .sort_by(|a, b| a.time.partial_cmp(&b.time).expect("dispatch times are finite"));
    }

    /// The tour set of a dispatch.
    pub fn set_of(&self, d: &Dispatch) -> &TourSet {
        &self.sets[d.set]
    }

    /// Redirects every dispatch of set `from` strictly after `after` to set
    /// `to`, returning how many were retargeted. Past dispatches keep their
    /// historical set — this is the incremental-replanning primitive: an
    /// online controller re-routes one rounding class and swaps the future
    /// occurrences of its tour set without touching the dispatch timeline.
    ///
    /// # Panics
    /// Panics when `to` is not a registered set.
    pub fn retarget_dispatches(&mut self, from: usize, to: usize, after: f64) -> usize {
        assert!(to < self.sets.len(), "unknown tour set {to}");
        let mut moved = 0;
        for d in &mut self.dispatches {
            if d.set == from && d.time > after {
                d.set = to;
                moved += 1;
            }
        }
        moved
    }

    /// Total service cost: the sum of tour-set costs over all dispatches —
    /// the paper's objective `Σ_j w(C_j)`.
    pub fn service_cost(&self) -> f64 {
        self.dispatches.iter().map(|d| self.sets[d.set].cost()).sum()
    }

    /// Number of dispatches.
    pub fn dispatch_count(&self) -> usize {
        self.dispatches.len()
    }

    /// Total number of individual sensor charges across the series.
    pub fn total_charges(&self) -> usize {
        self.dispatches.iter().map(|d| self.sets[d.set].sensors().len()).sum()
    }

    /// Charge times of `sensor` (node id), ascending.
    pub fn charge_times(&self, sensor: usize) -> Vec<f64> {
        let mut times: Vec<f64> = self
            .dispatches
            .iter()
            .filter(|d| self.sets[d.set].contains_sensor(sensor))
            .map(|d| d.time)
            .collect();
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        times
    }

    /// Charge times of every sensor node in `0..n` at once, each ascending
    /// — one inverted pass over the dispatches (`O(D log D + total
    /// charges)`) instead of an `O(n · D)` membership scan per sensor.
    /// Equals `(0..n).map(|s| self.charge_times(s))`.
    pub fn charge_times_all(&self, n: usize) -> Vec<Vec<f64>> {
        let mut order: Vec<&Dispatch> = self.dispatches.iter().collect();
        order.sort_by(|a, b| a.time.partial_cmp(&b.time).expect("dispatch times are finite"));
        let mut out = vec![Vec::new(); n];
        for d in order {
            for &s in self.sets[d.set].sensors() {
                if s < n {
                    out[s].push(d.time);
                }
            }
        }
        out
    }

    /// Per-charger travelled distance across the series, from the cached
    /// per-tour lengths. `q` is the number of chargers; every tour set must
    /// have exactly `q` tours.
    pub fn per_charger_distance(&self, q: usize) -> Vec<f64> {
        let mut out = vec![0.0; q];
        for d in &self.dispatches {
            let set = &self.sets[d.set];
            assert_eq!(set.tours().len(), q, "tour sets must have q tours");
            for (l, &len) in set.tour_lengths().iter().enumerate() {
                out[l] += len;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perpetuum_geom::Point2;
    use perpetuum_graph::DistMatrix;

    /// 2 sensors (nodes 0, 1) + 1 depot (node 2) on a line.
    fn dist() -> DistMatrix {
        DistMatrix::from_points(&[
            Point2::new(1.0, 0.0),
            Point2::new(2.0, 0.0),
            Point2::new(0.0, 0.0),
        ])
    }

    fn is_depot(v: usize) -> bool {
        v == 2
    }

    #[test]
    fn tour_set_cost_and_membership() {
        let d = dist();
        let ts = TourSet::new(vec![Tour::new(vec![2, 0, 1])], &d, is_depot);
        assert!((ts.cost() - 4.0).abs() < 1e-12); // 1 + 1 + 2
        assert_eq!(ts.sensors(), &[0, 1]);
        assert!(ts.contains_sensor(0));
        assert!(!ts.contains_sensor(2));
        assert!(!ts.is_idle());
    }

    #[test]
    fn idle_tour_set() {
        let d = dist();
        let ts = TourSet::new(vec![Tour::singleton(2)], &d, is_depot);
        assert_eq!(ts.cost(), 0.0);
        assert!(ts.is_idle());
    }

    #[test]
    fn series_accounting() {
        let d = dist();
        let mut s = ScheduleSeries::new();
        let both = s.add_set(TourSet::new(vec![Tour::new(vec![2, 0, 1])], &d, is_depot));
        let near = s.add_set(TourSet::new(vec![Tour::new(vec![2, 0])], &d, is_depot));
        s.push_dispatch(1.0, near);
        s.push_dispatch(2.0, both);
        s.push_dispatch(3.0, near);
        assert_eq!(s.dispatch_count(), 3);
        // near costs 2, both costs 4.
        assert!((s.service_cost() - 8.0).abs() < 1e-12);
        assert_eq!(s.total_charges(), 4);
        assert_eq!(s.charge_times(0), vec![1.0, 2.0, 3.0]);
        assert_eq!(s.charge_times(1), vec![2.0]);
    }

    #[test]
    fn sort_by_time_restores_order() {
        let d = dist();
        let mut s = ScheduleSeries::new();
        let set = s.add_set(TourSet::new(vec![Tour::new(vec![2, 0])], &d, is_depot));
        s.push_dispatch(5.0, set);
        s.push_dispatch(1.0, set);
        s.sort_by_time();
        assert_eq!(s.dispatches()[0].time, 1.0);
        assert_eq!(s.dispatches()[1].time, 5.0);
    }

    #[test]
    fn per_charger_distance_splits() {
        let d = dist();
        let mut s = ScheduleSeries::new();
        let set =
            s.add_set(TourSet::new(vec![Tour::new(vec![2, 0]), Tour::singleton(2)], &d, is_depot));
        s.push_dispatch(1.0, set);
        s.push_dispatch(2.0, set);
        let per = s.per_charger_distance(2);
        assert!((per[0] - 4.0).abs() < 1e-12);
        assert_eq!(per[1], 0.0);
        // Cached lengths agree with on-demand recomputation.
        let set = &s.sets()[0];
        for (cached, t) in set.tour_lengths().iter().zip(set.tours()) {
            assert!((cached - t.length(&d)).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "unknown tour set")]
    fn dispatch_of_unknown_set_panics() {
        let mut s = ScheduleSeries::new();
        s.push_dispatch(1.0, 0);
    }

    #[test]
    fn retarget_dispatches_moves_only_the_future() {
        let d = dist();
        let mut s = ScheduleSeries::new();
        let old = s.add_set(TourSet::new(vec![Tour::new(vec![2, 0])], &d, is_depot));
        let other = s.add_set(TourSet::new(vec![Tour::new(vec![2, 1])], &d, is_depot));
        let new = s.add_set(TourSet::new(vec![Tour::new(vec![2, 0, 1])], &d, is_depot));
        for &(t, set) in &[(1.0, old), (2.0, other), (3.0, old), (4.0, old)] {
            s.push_dispatch(t, set);
        }
        let moved = s.retarget_dispatches(old, new, 2.5);
        assert_eq!(moved, 2);
        let assigned: Vec<usize> = s.dispatches().iter().map(|d| d.set).collect();
        assert_eq!(assigned, vec![old, other, new, new]);
        // Times are untouched; only set references move.
        let times: Vec<f64> = s.dispatches().iter().map(|d| d.time).collect();
        assert_eq!(times, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "unknown tour set")]
    fn retarget_to_unknown_set_panics() {
        let d = dist();
        let mut s = ScheduleSeries::new();
        let set = s.add_set(TourSet::new(vec![Tour::new(vec![2, 0])], &d, is_depot));
        s.push_dispatch(1.0, set);
        s.retarget_dispatches(set, 9, 0.0);
    }

    #[test]
    fn charge_times_all_matches_per_sensor_scan() {
        let d = dist();
        let mut s = ScheduleSeries::new();
        let both = s.add_set(TourSet::new(vec![Tour::new(vec![2, 0, 1])], &d, is_depot));
        let near = s.add_set(TourSet::new(vec![Tour::new(vec![2, 0])], &d, is_depot));
        // Out-of-order dispatch times: the inverted pass must still emit
        // each sensor's times ascending.
        for &(t, set) in &[(3.0, both), (1.0, near), (2.0, both), (0.5, near)] {
            s.push_dispatch(t, set);
        }
        let all = s.charge_times_all(2);
        for (sensor, times) in all.iter().enumerate() {
            assert_eq!(*times, s.charge_times(sensor), "sensor {sensor}");
        }
        assert_eq!(all[0], vec![0.5, 1.0, 2.0, 3.0]);
        assert_eq!(all[1], vec![2.0, 3.0]);
    }
}
