//! **Algorithm 3 — `MinTotalDistance`** (Section V.B).
//!
//! The `2(K+2)`-approximation for the service cost minimization problem
//! with fixed maximum charging cycles:
//!
//! 1. round cycles to the geometric sequence `τ'_i = 2^k τ_1`
//!    ([`crate::rounding`]),
//! 2. dispatch the chargers at every multiple `j · τ_1 < T`; the `j`-th
//!    dispatch charges exactly the classes `V_k` with `2^k | j` — i.e. the
//!    cumulative set `D_{min(ν₂(j), K)}` where `ν₂` is the 2-adic valuation,
//! 3. route every dispatch with Algorithm 2 ([`crate::qtsp`]).
//!
//! Only `K + 1` *distinct* tour sets ever arise (`D_0 ⊂ D_1 ⊂ … ⊂ D_K`), so
//! the planner computes `K + 1` q-rooted TSP solutions and reuses them for
//! all `⌊T/τ_1⌋` dispatch times — exactly the paper's observation that the
//! scheduling sequence for one super-period `τ'_n = 2^K τ_1` is repeated
//! `⌈T/τ'_n⌉` times.

use crate::network::Instance;
use crate::qtsp::{q_rooted_tsp_routed_src, Routing};
use crate::rounding::{partition_cycles, CyclePartition};
use crate::schedule::{ScheduleSeries, TourSet};

/// Tunables for [`plan_min_total_distance`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MtdConfig {
    /// Local-search rounds applied to each tour (ablation only; `0` — the
    /// default — is the paper's plain Algorithm 2 routing).
    pub polish_rounds: usize,
    /// Tree-to-tour routing (ablation only; the default
    /// [`Routing::Doubling`] is the paper's Algorithm 2).
    pub routing: Routing,
}

/// 2-adic valuation ν₂(j): the exponent of the largest power of two
/// dividing `j`.
#[inline]
pub(crate) fn nu2(j: u64) -> usize {
    debug_assert!(j > 0);
    j.trailing_zeros() as usize
}

/// Runs Algorithm 3 and returns the full schedule series for the instance's
/// horizon, with dispatches in time order.
///
/// A network with zero sensors yields an empty series.
pub fn plan_min_total_distance(instance: &Instance, cfg: &MtdConfig) -> ScheduleSeries {
    let mut series = ScheduleSeries::new();
    if instance.n() == 0 {
        return series;
    }
    let partition = partition_cycles(instance.cycles());
    let sets = build_cumulative_tour_sets(instance, &partition, cfg);
    let set_ids: Vec<usize> = sets.into_iter().map(|s| series.add_set(s)).collect();
    push_dispatch_timeline(
        &mut series,
        &set_ids,
        partition.tau1,
        partition.k_max(),
        0.0,
        instance.horizon(),
    );
    series
}

/// Routes the `K + 1` cumulative sensor sets `D_0 … D_K` with Algorithm 2.
pub(crate) fn build_cumulative_tour_sets(
    instance: &Instance,
    partition: &CyclePartition,
    cfg: &MtdConfig,
) -> Vec<TourSet> {
    let network = instance.network();
    let depots = network.depot_nodes();
    let n = network.n();
    (0..=partition.k_max())
        .map(|k| {
            let terminals = partition.cumulative(k);
            let qt = q_rooted_tsp_routed_src(
                &network.dist_source(),
                &terminals,
                &depots,
                cfg.routing,
                cfg.polish_rounds,
            );
            TourSet::from_qtours(qt, |v| v >= n)
        })
        .collect()
}

/// Emits dispatches at `start + j·τ_1` for `j = 1, 2, …` while strictly
/// before `end`, each referencing `set_ids[min(ν₂(j), K)]`.
///
/// Shared by Algorithm 3 (with `start = 0`) and the variable-cycle
/// replanner (with `start = t`, the replan time).
pub(crate) fn push_dispatch_timeline(
    series: &mut ScheduleSeries,
    set_ids: &[usize],
    tau1: f64,
    k_max: usize,
    start: f64,
    end: f64,
) {
    debug_assert_eq!(set_ids.len(), k_max + 1);
    let mut j: u64 = 1;
    loop {
        let t = start + j as f64 * tau1;
        if t >= end {
            break;
        }
        let k = nu2(j).min(k_max);
        series.push_dispatch(t, set_ids[k]);
        j += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;
    use perpetuum_geom::Point2;

    fn line_instance(cycles: Vec<f64>, horizon: f64) -> Instance {
        let n = cycles.len();
        let sensors: Vec<Point2> =
            (0..n).map(|i| Point2::new((i + 1) as f64 * 10.0, 0.0)).collect();
        let depots = vec![Point2::new(0.0, 0.0)];
        Instance::new(Network::new(sensors, depots), cycles, horizon)
    }

    #[test]
    fn nu2_values() {
        assert_eq!(nu2(1), 0);
        assert_eq!(nu2(2), 1);
        assert_eq!(nu2(3), 0);
        assert_eq!(nu2(4), 2);
        assert_eq!(nu2(12), 2);
        assert_eq!(nu2(64), 6);
    }

    #[test]
    fn uniform_cycles_single_set_every_tau() {
        // All cycles 2.0, T = 10: dispatches at 2, 4, 6, 8 (not 10).
        let inst = line_instance(vec![2.0; 3], 10.0);
        let s = plan_min_total_distance(&inst, &MtdConfig::default());
        let times: Vec<f64> = s.dispatches().iter().map(|d| d.time).collect();
        assert_eq!(times, vec![2.0, 4.0, 6.0, 8.0]);
        assert_eq!(s.sets().len(), 1);
        // Every dispatch charges all three sensors.
        assert_eq!(s.total_charges(), 12);
    }

    #[test]
    fn two_class_dispatch_pattern() {
        // τ = [1, 2]: V_0 = {0}, V_1 = {1}; K = 1; T = 8.
        // j:      1    2    3    4    5    6    7
        // set:    D0   D1   D0   D1   D0   D1   D0
        let inst = line_instance(vec![1.0, 2.0], 8.0);
        let s = plan_min_total_distance(&inst, &MtdConfig::default());
        assert_eq!(s.dispatch_count(), 7);
        assert_eq!(s.charge_times(0), vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        assert_eq!(s.charge_times(1), vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn rounded_cycle_gaps_respected() {
        // τ = [1, 3, 5, 50]: rounded to [1, 2, 4, 32].
        let inst = line_instance(vec![1.0, 3.0, 5.0, 50.0], 64.0);
        let s = plan_min_total_distance(&inst, &MtdConfig::default());
        for (i, &rounded) in [1.0, 2.0, 4.0, 32.0].iter().enumerate() {
            let times = s.charge_times(i);
            assert!(!times.is_empty(), "sensor {i} never charged");
            // First charge at exactly the rounded cycle.
            assert_eq!(times[0], rounded, "sensor {i}");
            // All gaps equal the rounded cycle.
            for w in times.windows(2) {
                assert!((w[1] - w[0] - rounded).abs() < 1e-9, "sensor {i}");
            }
        }
    }

    #[test]
    fn feasible_by_construction() {
        let inst = line_instance(vec![1.0, 1.7, 2.9, 4.4, 13.0, 50.0], 100.0);
        let s = plan_min_total_distance(&inst, &MtdConfig::default());
        crate::feasibility::check_series(&inst, &s).unwrap();
    }

    #[test]
    fn no_dispatch_at_or_after_horizon() {
        let inst = line_instance(vec![2.0; 2], 6.0);
        let s = plan_min_total_distance(&inst, &MtdConfig::default());
        assert!(s.dispatches().iter().all(|d| d.time < 6.0));
        // τ' = 2, so dispatches at 2, 4 only.
        assert_eq!(s.dispatch_count(), 2);
    }

    #[test]
    fn short_horizon_needs_no_dispatches() {
        // T smaller than every cycle: initial full charge suffices.
        let inst = line_instance(vec![10.0, 20.0], 5.0);
        let s = plan_min_total_distance(&inst, &MtdConfig::default());
        assert_eq!(s.dispatch_count(), 0);
        assert_eq!(s.service_cost(), 0.0);
        crate::feasibility::check_series(&inst, &s).unwrap();
    }

    #[test]
    fn polish_only_reduces_cost() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let sensors: Vec<Point2> = (0..40)
            .map(|_| Point2::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0)))
            .collect();
        let cycles: Vec<f64> = (0..40).map(|_| rng.gen_range(1.0..50.0)).collect();
        let depots = vec![Point2::new(500.0, 500.0), Point2::new(100.0, 900.0)];
        let inst = Instance::new(Network::new(sensors, depots), cycles, 64.0);
        let plain = plan_min_total_distance(&inst, &MtdConfig::default());
        let polished = plan_min_total_distance(
            &inst,
            &MtdConfig { polish_rounds: 10, ..MtdConfig::default() },
        );
        assert!(polished.service_cost() <= plain.service_cost() + 1e-9);
        crate::feasibility::check_series(&inst, &polished).unwrap();
    }

    #[test]
    fn matching_routing_is_feasible_and_cheaper_on_average() {
        use crate::qtsp::Routing;
        use rand::{Rng, SeedableRng};
        let mut doubled_total = 0.0;
        let mut matched_total = 0.0;
        for seed in 0..4u64 {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed + 600);
            let sensors: Vec<Point2> = (0..30)
                .map(|_| Point2::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0)))
                .collect();
            let cycles: Vec<f64> = (0..30).map(|_| rng.gen_range(1.0..50.0)).collect();
            let depots = vec![Point2::new(500.0, 500.0)];
            let inst = Instance::new(Network::new(sensors, depots), cycles, 64.0);
            let doubled = plan_min_total_distance(&inst, &MtdConfig::default());
            let matched = plan_min_total_distance(
                &inst,
                &MtdConfig { routing: Routing::Matching, ..MtdConfig::default() },
            );
            crate::feasibility::check_series(&inst, &matched).unwrap();
            doubled_total += doubled.service_cost();
            matched_total += matched.service_cost();
        }
        assert!(matched_total < doubled_total);
    }

    #[test]
    fn empty_network_empty_series() {
        let net = Network::new(vec![], vec![Point2::ORIGIN]);
        let inst = Instance::new(net, vec![], 10.0);
        let s = plan_min_total_distance(&inst, &MtdConfig::default());
        assert_eq!(s.dispatch_count(), 0);
    }
}
