//! Naive reference planners — ablation strawmen, not paper algorithms.
//!
//! Algorithm 3 makes two moves at once: it *rounds* cycles down to powers
//! of two (charging some sensors up to twice as often as strictly needed)
//! in exchange for *aligning* dispatch times so sensors share tours. These
//! planners isolate the trade:
//!
//! * [`plan_per_sensor_cadence`] keeps every sensor at its exact maximal
//!   cadence but gives up alignment: each sensor is toured individually at
//!   multiples of its own cycle (with continuous cycles, dispatch times
//!   almost never coincide, so batching is vacuous). This is the
//!   "no-rounding" ablation.
//! * [`plan_charge_all`] dispatches the full-network tour set every
//!   `τ_min` — the naive strategy Section III.C dismisses as
//!   "significantly increasing the service cost".

use crate::network::Instance;
use crate::qtsp::q_rooted_tsp_src;
use crate::schedule::{ScheduleSeries, TourSet};

/// Charges each sensor individually at exact multiples of its own maximum
/// charging cycle. Feasible by construction; no tour sharing.
pub fn plan_per_sensor_cadence(instance: &Instance) -> ScheduleSeries {
    let network = instance.network();
    let depots = network.depot_nodes();
    let n = network.n();
    let mut series = ScheduleSeries::new();
    let mut dispatches: Vec<(f64, usize)> = Vec::new();
    for i in 0..n {
        let set_id = series.add_set(TourSet::from_qtours(
            q_rooted_tsp_src(&network.dist_source(), &[network.sensor_node(i)], &depots, 0),
            |v| v >= n,
        ));
        let tau = instance.cycles()[i];
        let mut t = tau;
        while t < instance.horizon() {
            dispatches.push((t, set_id));
            t += tau;
        }
    }
    dispatches.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    for (t, set) in dispatches {
        series.push_dispatch(t, set);
    }
    series
}

/// Charges every sensor at every multiple of `τ_min` with the full-network
/// tour set.
pub fn plan_charge_all(instance: &Instance) -> ScheduleSeries {
    let network = instance.network();
    let n = network.n();
    let mut series = ScheduleSeries::new();
    if n == 0 {
        return series;
    }
    let all: Vec<usize> = (0..n).collect();
    let set = series.add_set(TourSet::from_qtours(
        q_rooted_tsp_src(&network.dist_source(), &all, &network.depot_nodes(), 0),
        |v| v >= n,
    ));
    let tau_min = instance.cycles().iter().cloned().fold(f64::INFINITY, f64::min);
    let mut t = tau_min;
    while t < instance.horizon() {
        series.push_dispatch(t, set);
        t += tau_min;
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feasibility::check_series;
    use crate::mtd::{plan_min_total_distance, MtdConfig};
    use crate::network::Network;
    use perpetuum_geom::Point2;
    use rand::{Rng, SeedableRng};

    fn random_instance(n: usize, seed: u64, horizon: f64) -> Instance {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let sensors: Vec<Point2> = (0..n)
            .map(|_| Point2::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0)))
            .collect();
        let depots = vec![Point2::new(500.0, 500.0), Point2::new(0.0, 0.0)];
        let cycles: Vec<f64> = (0..n).map(|_| rng.gen_range(1.0..20.0)).collect();
        Instance::new(Network::new(sensors, depots), cycles, horizon)
    }

    #[test]
    fn per_sensor_cadence_is_feasible() {
        let inst = random_instance(12, 1, 100.0);
        let plan = plan_per_sensor_cadence(&inst);
        check_series(&inst, &plan).unwrap();
        // Every dispatch covers exactly one sensor.
        for d in plan.dispatches() {
            assert_eq!(plan.set_of(d).sensors().len(), 1);
        }
    }

    #[test]
    fn charge_all_is_feasible_and_expensive() {
        let inst = random_instance(12, 2, 50.0);
        let all = plan_charge_all(&inst);
        check_series(&inst, &all).unwrap();
        let mtd = plan_min_total_distance(&inst, &MtdConfig::default());
        assert!(mtd.service_cost() <= all.service_cost() + 1e-6);
    }

    #[test]
    fn per_sensor_charge_counts_match_exact_cadence() {
        let inst = random_instance(8, 3, 64.0);
        let plan = plan_per_sensor_cadence(&inst);
        for (i, &tau) in inst.cycles().iter().enumerate() {
            let expected = ((inst.horizon() - 1e-9) / tau).floor() as usize;
            assert_eq!(plan.charge_times(i).len(), expected, "sensor {i}");
        }
    }

    #[test]
    fn mtd_beats_per_sensor_cadence_on_clustered_cycles() {
        // Many sensors share similar cycles → alignment pays for rounding.
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let sensors: Vec<Point2> = (0..30)
            .map(|_| Point2::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0)))
            .collect();
        let depots = vec![Point2::new(500.0, 500.0)];
        let cycles: Vec<f64> = (0..30).map(|_| rng.gen_range(4.0..8.0)).collect();
        let inst = Instance::new(Network::new(sensors, depots), cycles, 128.0);
        let mtd = plan_min_total_distance(&inst, &MtdConfig::default());
        let naive = plan_per_sensor_cadence(&inst);
        assert!(
            mtd.service_cost() < naive.service_cost(),
            "MTD {} vs per-sensor {}",
            mtd.service_cost(),
            naive.service_cost()
        );
    }

    #[test]
    fn empty_instances() {
        let net = Network::new(vec![], vec![Point2::ORIGIN]);
        let inst = Instance::new(net, vec![], 10.0);
        assert_eq!(plan_per_sensor_cadence(&inst).dispatch_count(), 0);
        assert_eq!(plan_charge_all(&inst).dispatch_count(), 0);
    }
}
