//! **Algorithm 1** — the `q`-rooted Minimum Spanning Forest.
//!
//! Given a complete weighted graph over terminals (to-be-charged sensors)
//! and `q` roots (depots), find `q` disjoint trees spanning all terminals,
//! each containing a distinct root, of minimum total weight. The paper's
//! exact algorithm: contract all roots into a single super-root (taking the
//! cheapest root edge per terminal), compute an MST, then un-contract.
//!
//! Lemma 1 of the paper proves this exact in `O(n²)` time; the proptests in
//! this crate verify optimality against brute force on small instances.
//!
//! [`rooted_msf_general`] accepts arbitrary terminal–root distances, which
//! Section VI.B needs: its repair step uses *super-roots representing whole
//! schedulings*, whose distance to a sensor is the nearest distance to any
//! node already in the scheduling.

use perpetuum_geom::Point2;
use perpetuum_graph::mst::prim;
use perpetuum_graph::sparse::{knn_edges, prim_sparse, SparseGraph};
use perpetuum_graph::{DistMatrix, DistSource, Metric};

/// Neighbour count for the sparse super-root MSF path. The Euclidean MST
/// is contained in the k-NN graph for modest `k` on any realistic
/// deployment; 16 leaves a wide safety margin while keeping the edge list
/// `O(n)`.
pub const SPARSE_MSF_K: usize = 16;

/// A forest of root-attached trees produced by [`rooted_msf_general`].
#[derive(Debug, Clone)]
pub struct RootedForest {
    /// `trees[r]` — edges of the tree attached to root `r`, each edge given
    /// in *terminal/root index space*: see [`ForestEdge`].
    pub trees: Vec<Vec<ForestEdge>>,
    /// `assignment[t]` — index of the root whose tree contains terminal `t`.
    pub assignment: Vec<usize>,
    /// Total forest weight.
    pub weight: f64,
}

/// An edge of a rooted forest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForestEdge {
    /// An edge between two terminals (indices into the terminal list).
    TermTerm(usize, usize),
    /// An edge from a root to a terminal: `(root index, terminal index)`.
    RootTerm(usize, usize),
}

impl RootedForest {
    /// Terminals assigned to root `r`, in ascending terminal index.
    ///
    /// Allocates a fresh `Vec` per call; when iterating over *all* roots
    /// (scheduler loops, per-root routing), use
    /// [`RootedForest::terminals_by_root`] instead — one pass, one
    /// allocation set, instead of `q` scans over the full assignment.
    pub fn terminals_of(&self, r: usize) -> Vec<usize> {
        self.assignment
            .iter()
            .enumerate()
            .filter_map(|(t, &root)| (root == r).then_some(t))
            .collect()
    }

    /// All per-root terminal groups in one `O(m + q)` pass:
    /// `groups[r]` lists the terminals of root `r` in ascending order.
    pub fn terminals_by_root(&self) -> Vec<Vec<usize>> {
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); self.trees.len()];
        for (t, &r) in self.assignment.iter().enumerate() {
            groups[r].push(t);
        }
        groups
    }
}

/// Exact `q`-rooted MSF over explicit distances.
///
/// * `term_dist` — any [`Metric`] over the `m` terminals (a dense induced
///   matrix, a [`DistSource`], …),
/// * `root_dist[r][t]` — distance from root `r` to terminal `t`
///   (`root_dist.len()` is the number of roots, `q ≥ 1`).
///
/// Returns the optimal forest. Terminals with no peers still get attached
/// to their cheapest root. An empty terminal set yields `q` empty trees.
/// Internally contracts into an `(m+1)²` matrix — for large sparse
/// instances use [`rooted_msf_points`] instead.
pub fn rooted_msf_general<M: Metric>(term_dist: &M, root_dist: &[Vec<f64>]) -> RootedForest {
    let m = term_dist.len();
    let q = root_dist.len();
    assert!(q >= 1, "at least one root required");
    assert!(root_dist.iter().all(|r| r.len() == m), "root distance rows must cover every terminal");
    if m == 0 {
        return RootedForest { trees: vec![Vec::new(); q], assignment: Vec::new(), weight: 0.0 };
    }

    // Contract: node t < m is terminal t, node m is the super-root whose
    // edge to terminal t costs min_r root_dist[r][t] via best_root[t].
    let mut best_root = vec![0usize; m];
    let mut best_cost = vec![f64::INFINITY; m];
    for (r, row) in root_dist.iter().enumerate() {
        for (t, &d) in row.iter().enumerate() {
            if d < best_cost[t] {
                best_cost[t] = d;
                best_root[t] = r;
            }
        }
    }
    let contracted = DistMatrix::from_fn(m + 1, |i, j| {
        // from_fn only asks for i < j, so j == m exactly when the super-root
        // is involved.
        if j == m {
            best_cost[i]
        } else {
            term_dist.get(i, j)
        }
    });
    let mst = prim(&contracted);
    uncontract(m, q, &mst, &best_root, &best_cost, |a, b| term_dist.get(a, b))
}

/// Un-contracts a super-root MST into a [`RootedForest`]. `mst` is an MST
/// edge list over `m + 1` nodes where node `m` is the super-root; each MST
/// edge incident to it attaches one sub-tree to a specific physical root
/// (via `best_root`), and a DSU over the terminal-terminal edges recovers
/// those sub-trees. Shared by the dense and sparse MSF paths, and by the
/// incremental splice ([`crate::incremental`]), whose heap-Prim over the
/// surviving-plus-candidate edge pool emits the same contracted edge-list
/// shape.
pub(crate) fn uncontract(
    m: usize,
    q: usize,
    mst: &[(usize, usize)],
    best_root: &[usize],
    best_cost: &[f64],
    term_w: impl Fn(usize, usize) -> f64,
) -> RootedForest {
    let mut dsu = perpetuum_graph::DisjointSets::new(m);
    let mut term_edges: Vec<(usize, usize)> = Vec::new();
    let mut root_edges: Vec<(usize, usize)> = Vec::new(); // (root, terminal)
    let mut weight = 0.0;
    for &(u, v) in mst {
        let (a, b) = (u.min(v), u.max(v));
        if b == m {
            root_edges.push((best_root[a], a));
            weight += best_cost[a];
        } else {
            term_edges.push((a, b));
            dsu.union(a, b);
            weight += term_w(a, b);
        }
    }

    // Every component of the terminal sub-forest hangs off exactly one
    // super-root edge (tree property), which fixes its root assignment.
    let mut comp_root = std::collections::HashMap::new();
    for &(r, t) in &root_edges {
        let prev = comp_root.insert(dsu.find(t), r);
        debug_assert!(prev.is_none(), "a tree component can only attach to one root");
    }

    let mut assignment = vec![usize::MAX; m];
    for (t, slot) in assignment.iter_mut().enumerate() {
        *slot = *comp_root
            .get(&dsu.find(t))
            .expect("every terminal component touches the super-root in an MST");
    }

    let mut trees: Vec<Vec<ForestEdge>> = vec![Vec::new(); q];
    for &(r, t) in &root_edges {
        trees[r].push(ForestEdge::RootTerm(r, t));
    }
    for &(a, b) in &term_edges {
        trees[assignment[a]].push(ForestEdge::TermTerm(a, b));
    }

    RootedForest { trees, assignment, weight }
}

/// **Algorithm 1** on a host graph: `q`-rooted MSF over `terminals` and
/// `roots` given as node ids of `dist` (the full `n + q` node matrix of a
/// [`crate::network::Network`]). Edges in the result are still expressed in
/// terminal/root *index* space; use `terminals[t]` / `roots[r]` to map back.
pub fn q_rooted_msf(dist: &DistMatrix, terminals: &[usize], roots: &[usize]) -> RootedForest {
    let term_dist = dist.induced(terminals);
    let root_dist: Vec<Vec<f64>> =
        roots.iter().map(|&r| terminals.iter().map(|&t| dist.get(r, t)).collect()).collect();
    rooted_msf_general(&term_dist, &root_dist)
}

/// Sparse Algorithm 1: `q`-rooted MSF from point positions, without a
/// dense matrix — `O(m·k·log m + m·q)` instead of `Θ(m²)`.
///
/// The contraction is the same as [`rooted_msf_general`]'s: terminal `t`'s
/// super-root edge costs `min_r d(roots[r], t)`. The terminal-terminal
/// candidate edges come from the `k`-NN graph instead of the complete
/// graph; since every terminal also carries a super-root edge, the
/// contracted graph is always connected and heap-Prim never fails.
///
/// **Exactness**: the contracted MST's terminal-terminal edges are a
/// subset of the terminals' Euclidean MST (cycle property), and the
/// Euclidean MST is contained in the `k`-NN graph whenever each point's
/// MST-neighbours rank within its `k` nearest — true in practice for
/// `k ≥ 8` on uniform/clustered deployments. When the `k`-NN graph misses
/// an EMST edge the result is still a valid spanning forest, merely a
/// (tight) upper bound; the parity suite checks equality with the dense
/// path on hundreds of seeded instances.
pub fn q_rooted_msf_sparse(
    points: &[Point2],
    terminals: &[usize],
    roots: &[usize],
    k: usize,
) -> RootedForest {
    let q = roots.len();
    assert!(q >= 1, "at least one root required");
    let tpts: Vec<Point2> = terminals.iter().map(|&t| points[t]).collect();
    // Physical-root distance rows: O(m·q) — q is small (the charger count).
    let root_dist: Vec<Vec<f64>> =
        roots.iter().map(|&rn| tpts.iter().map(|tp| points[rn].dist(*tp)).collect()).collect();
    rooted_msf_points(&tpts, &root_dist, k)
}

/// Sparse [`rooted_msf_general`]: terminal–terminal candidate edges come
/// from the `k`-NN graph over the terminal positions, super-root edges from
/// arbitrary `root_dist` rows — never an `(m+1)²` matrix. Same exactness
/// argument as [`q_rooted_msf_sparse`]. Section VI.B's repair step uses
/// this with *scheduling* super-roots, so in-sim replans on sparse
/// networks stay free of dense allocations.
pub fn rooted_msf_points(term_points: &[Point2], root_dist: &[Vec<f64>], k: usize) -> RootedForest {
    let m = term_points.len();
    let q = root_dist.len();
    assert!(q >= 1, "at least one root required");
    assert!(root_dist.iter().all(|r| r.len() == m), "root distance rows must cover every terminal");
    if m == 0 {
        return RootedForest { trees: vec![Vec::new(); q], assignment: Vec::new(), weight: 0.0 };
    }

    // Cheapest root per terminal.
    let mut best_root = vec![0usize; m];
    let mut best_cost = vec![f64::INFINITY; m];
    for (r, row) in root_dist.iter().enumerate() {
        for (t, &d) in row.iter().enumerate() {
            if d < best_cost[t] {
                best_cost[t] = d;
                best_root[t] = r;
            }
        }
    }

    // Contracted sparse graph: terminal k-NN edges + one super-root edge
    // (node m) per terminal.
    let mut edges = knn_edges(term_points, k.min(m.saturating_sub(1)));
    edges.reserve(m);
    for (t, &c) in best_cost.iter().enumerate() {
        edges.push((t, m, c));
    }
    let graph = SparseGraph::from_edges(m + 1, &edges);
    let (mst, _) = prim_sparse(&graph, m).expect("super-root edges connect every terminal");
    uncontract(m, q, &mst, &best_root, &best_cost, |a, b| term_points[a].dist(term_points[b]))
}

/// [`q_rooted_msf`] over a [`DistSource`]: dense sources use the exact
/// dense contraction, point sources the sparse `k`-NN contraction with
/// [`SPARSE_MSF_K`] — the dispatch point that keeps large instances free
/// of `n²` memory.
pub fn q_rooted_msf_src(
    src: &DistSource<'_>,
    terminals: &[usize],
    roots: &[usize],
) -> RootedForest {
    match src {
        DistSource::Dense(d) => q_rooted_msf(d, terminals, roots),
        DistSource::Points(p) => q_rooted_msf_sparse(p, terminals, roots, SPARSE_MSF_K),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perpetuum_geom::Point2;

    /// Brute force: try every assignment of terminals to roots, MST each
    /// group (root + its terminals), return the best total weight.
    fn brute_force_msf(term_dist: &DistMatrix, root_dist: &[Vec<f64>]) -> f64 {
        let m = term_dist.len();
        let q = root_dist.len();
        let mut best = f64::INFINITY;
        let mut assign = vec![0usize; m];
        loop {
            // Weight of this assignment: MST per root over root + group.
            let mut total = 0.0;
            #[allow(clippy::needless_range_loop)]
            for r in 0..q {
                let group: Vec<usize> = (0..m).filter(|&t| assign[t] == r).collect();
                if group.is_empty() {
                    continue;
                }
                // Build a local matrix: node 0 = root, nodes 1.. = group.
                let g = DistMatrix::from_fn(group.len() + 1, |i, j| {
                    if i == 0 {
                        root_dist[r][group[j - 1]]
                    } else {
                        term_dist.get(group[i - 1], group[j - 1])
                    }
                });
                let mst = prim(&g);
                total += perpetuum_graph::mst::tree_weight(&g, &mst);
            }
            best = best.min(total);
            // Next assignment in base-q counting.
            let mut i = 0;
            loop {
                if i == m {
                    return best;
                }
                assign[i] += 1;
                if assign[i] < q {
                    break;
                }
                assign[i] = 0;
                i += 1;
            }
        }
    }

    fn forest_weight_ok(f: &RootedForest, term_dist: &DistMatrix, root_dist: &[Vec<f64>]) {
        let mut w = 0.0;
        for tree in &f.trees {
            for e in tree {
                w += match *e {
                    ForestEdge::TermTerm(a, b) => term_dist.get(a, b),
                    ForestEdge::RootTerm(r, t) => root_dist[r][t],
                };
            }
        }
        assert!((w - f.weight).abs() < 1e-9, "declared weight {} vs summed {}", f.weight, w);
    }

    #[test]
    fn empty_terminals() {
        let f = rooted_msf_general(&DistMatrix::zeros(0), &[vec![], vec![]]);
        assert_eq!(f.weight, 0.0);
        assert_eq!(f.trees.len(), 2);
        assert!(f.assignment.is_empty());
    }

    #[test]
    fn single_terminal_attaches_to_cheapest_root() {
        let term = DistMatrix::zeros(1);
        let roots = vec![vec![5.0], vec![2.0], vec![7.0]];
        let f = rooted_msf_general(&term, &roots);
        assert_eq!(f.assignment, vec![1]);
        assert_eq!(f.weight, 2.0);
        assert_eq!(f.trees[1], vec![ForestEdge::RootTerm(1, 1 - 1)]);
        assert!(f.trees[0].is_empty() && f.trees[2].is_empty());
    }

    #[test]
    fn two_clusters_two_roots() {
        // Terminals 0,1 near root 0; terminals 2,3 near root 1.
        let pts = [
            Point2::new(0.0, 1.0),
            Point2::new(0.0, 2.0),
            Point2::new(100.0, 1.0),
            Point2::new(100.0, 2.0),
        ];
        let term = DistMatrix::from_points(&pts);
        let r0 = Point2::new(0.0, 0.0);
        let r1 = Point2::new(100.0, 0.0);
        let roots = vec![
            pts.iter().map(|p| p.dist(r0)).collect::<Vec<_>>(),
            pts.iter().map(|p| p.dist(r1)).collect::<Vec<_>>(),
        ];
        let f = rooted_msf_general(&term, &roots);
        assert_eq!(f.assignment, vec![0, 0, 1, 1]);
        assert!((f.weight - 4.0).abs() < 1e-9);
        forest_weight_ok(&f, &term, &roots);
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        use rand::{Rng, SeedableRng};
        for seed in 0..8u64 {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let m = rng.gen_range(2..6);
            let q = rng.gen_range(1..4);
            let pts: Vec<Point2> = (0..m)
                .map(|_| Point2::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)))
                .collect();
            let rpts: Vec<Point2> = (0..q)
                .map(|_| Point2::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)))
                .collect();
            let term = DistMatrix::from_points(&pts);
            let roots: Vec<Vec<f64>> =
                rpts.iter().map(|r| pts.iter().map(|p| p.dist(*r)).collect()).collect();
            let f = rooted_msf_general(&term, &roots);
            let bf = brute_force_msf(&term, &roots);
            assert!(
                (f.weight - bf).abs() < 1e-9,
                "seed {seed}: algorithm {} vs brute force {bf}",
                f.weight
            );
            forest_weight_ok(&f, &term, &roots);
        }
    }

    #[test]
    fn host_graph_wrapper_consistency() {
        // 3 sensors, 2 depots on a line: sensors at 1, 2, 10; depots at 0, 9.
        let sensors = [Point2::new(1.0, 0.0), Point2::new(2.0, 0.0), Point2::new(10.0, 0.0)];
        let depots = [Point2::new(0.0, 0.0), Point2::new(9.0, 0.0)];
        let all: Vec<Point2> = sensors.iter().chain(depots.iter()).copied().collect();
        let dist = DistMatrix::from_points(&all);
        let f = q_rooted_msf(&dist, &[0, 1, 2], &[3, 4]);
        // Sensors 0,1 go to depot 0 (cost 1+1), sensor 2 to depot 1 (cost 1).
        assert_eq!(f.assignment, vec![0, 0, 1]);
        assert!((f.weight - 3.0).abs() < 1e-9);
    }

    #[test]
    fn forest_spans_every_terminal_exactly_once() {
        let pts: Vec<Point2> = (0..12)
            .map(|i| Point2::new((i * 17 % 7) as f64 * 10.0, (i * 29 % 11) as f64 * 10.0))
            .collect();
        let term = DistMatrix::from_points(&pts);
        let roots: Vec<Vec<f64>> = (0..3)
            .map(|r| {
                let rp = Point2::new(r as f64 * 40.0, 50.0);
                pts.iter().map(|p| p.dist(rp)).collect()
            })
            .collect();
        let f = rooted_msf_general(&term, &roots);
        // Assignments all valid, every terminal in exactly one tree.
        assert!(f.assignment.iter().all(|&r| r < 3));
        let mut count = [0usize; 12];
        for r in 0..3 {
            for t in f.terminals_of(r) {
                count[t] += 1;
            }
        }
        assert!(count.iter().all(|&c| c == 1));
        // Edge counts: a tree with k terminals has exactly k edges
        // (k-1 terminal-terminal + 1 root edge) when k ≥ 1.
        for r in 0..3 {
            let k = f.terminals_of(r).len();
            let expected = if k == 0 { 0 } else { k };
            assert_eq!(f.trees[r].len(), expected, "root {r}");
        }
    }

    #[test]
    fn sparse_msf_matches_dense_on_random_instances() {
        // Satellite parity check: the k-NN super-root construction must
        // reproduce the dense Algorithm 1 exactly (weight and assignment)
        // on instances small enough to compare, across sizes up to 200.
        use rand::{Rng, SeedableRng};
        for (seed, n) in [(1u64, 20usize), (2, 60), (3, 120), (4, 200)] {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed * 31 + 5);
            let pts: Vec<Point2> = (0..n + 3)
                .map(|_| Point2::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0)))
                .collect();
            let dist = DistMatrix::from_points(&pts);
            let terminals: Vec<usize> = (0..n).collect();
            let roots = vec![n, n + 1, n + 2];
            let dense = q_rooted_msf(&dist, &terminals, &roots);
            let sparse = q_rooted_msf_sparse(&pts, &terminals, &roots, SPARSE_MSF_K);
            assert!(
                (dense.weight - sparse.weight).abs() < 1e-9,
                "n={n}: dense {} vs sparse {}",
                dense.weight,
                sparse.weight
            );
            assert_eq!(dense.assignment, sparse.assignment, "n={n}");
        }
    }

    #[test]
    fn points_variant_matches_general_with_scheduling_roots() {
        // `rooted_msf_points` must reproduce the exact contracted MSF for
        // *general* root rows (here: nearest-distance-to-a-random-subset
        // rows, the shape Section VI.B's repair feeds it), not just
        // physical point roots.
        use rand::{Rng, SeedableRng};
        for (seed, m) in [(1u64, 15usize), (2, 60), (3, 150)] {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed * 91 + 7);
            let pts: Vec<Point2> = (0..m)
                .map(|_| Point2::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0)))
                .collect();
            let term = DistMatrix::from_points(&pts);
            let q = rng.gen_range(2..5);
            let root_dist: Vec<Vec<f64>> = (0..q)
                .map(|_| {
                    let anchors: Vec<Point2> = (0..rng.gen_range(1..6))
                        .map(|_| {
                            Point2::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0))
                        })
                        .collect();
                    pts.iter()
                        .map(|p| anchors.iter().map(|a| p.dist(*a)).fold(f64::INFINITY, f64::min))
                        .collect()
                })
                .collect();
            let dense = rooted_msf_general(&term, &root_dist);
            let sparse = rooted_msf_points(&pts, &root_dist, SPARSE_MSF_K);
            assert!(
                (dense.weight - sparse.weight).abs() < 1e-9,
                "seed {seed} m={m}: dense {} vs sparse {}",
                dense.weight,
                sparse.weight
            );
            assert_eq!(dense.assignment, sparse.assignment, "seed {seed} m={m}");
        }
    }

    #[test]
    fn terminals_by_root_matches_terminals_of() {
        let pts: Vec<Point2> = (0..15)
            .map(|i| Point2::new((i * 13 % 9) as f64 * 11.0, (i * 19 % 8) as f64 * 13.0))
            .collect();
        let dist = DistMatrix::from_points(&pts);
        let f = q_rooted_msf(&dist, &(0..12).collect::<Vec<_>>(), &[12, 13, 14]);
        let grouped = f.terminals_by_root();
        assert_eq!(grouped.len(), 3);
        for (r, g) in grouped.iter().enumerate() {
            assert_eq!(*g, f.terminals_of(r), "root {r}");
        }
    }
}
