//! The greedy baseline of Section VII.A.
//!
//! *"Each sensor sends a charging request to the base station when it will
//! deplete its energy soon. Once receiving a request, the base station
//! commands the q mobile chargers to charge those sensors whose estimated
//! residual lifetimes are less than a given threshold `Δl` (with
//! `Δl = τ_min`)."*
//!
//! The baseline therefore charges every sensor as late as possible and
//! routes each batch of urgent sensors with the same `q`-rooted TSP
//! subroutine the proposed algorithms use (so the comparison isolates
//! *scheduling* quality, not routing quality).
//!
//! [`plan_greedy_fixed`] is the deterministic offline unrolling for fixed
//! cycles; [`greedy_batch`] is the single-round primitive the simulator's
//! online greedy policy shares with it.

use crate::network::{Instance, Network};
use crate::qtsp::q_rooted_tsp_src;
use crate::schedule::{ScheduleSeries, TourSet};

/// Tunables for the greedy baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GreedyConfig {
    /// Residual-lifetime threshold `Δl` below which a sensor requests a
    /// charge. The paper sets `Δl = τ_min`.
    pub threshold: f64,
    /// How often the base station evaluates pending requests. Matching the
    /// paper's `Δl = τ_min` granularity keeps every sensor alive: a sensor
    /// whose residual dips under `Δl` is always charged within one tick.
    pub tick: f64,
    /// Local-search rounds per tour (ablation only, default 0).
    pub polish_rounds: usize,
}

impl GreedyConfig {
    /// The paper's configuration for a given `τ_min`.
    pub fn paper_default(tau_min: f64) -> Self {
        Self { threshold: tau_min, tick: tau_min, polish_rounds: 0 }
    }
}

/// Routes one batch of pending sensors (`sensor` node ids) through all `q`
/// chargers, returning the tour set. The primitive shared by the offline
/// unrolling and the simulator's online policy.
pub fn greedy_batch(network: &Network, pending: &[usize], polish_rounds: usize) -> TourSet {
    let n = network.n();
    let depots = network.depot_nodes();
    let qt = q_rooted_tsp_src(&network.dist_source(), pending, &depots, polish_rounds);
    TourSet::from_qtours(qt, |v| v >= n)
}

/// Deterministic offline unrolling of the greedy baseline under fixed
/// cycles: at every tick, sensors whose residual lifetime is `≤ threshold`
/// are batched and charged to full.
///
/// ```
/// use perpetuum_core::greedy::{plan_greedy_fixed, GreedyConfig};
/// use perpetuum_core::network::{Instance, Network};
/// use perpetuum_geom::Point2;
///
/// let network = Network::new(
///     vec![Point2::new(30.0, 0.0)],
///     vec![Point2::new(0.0, 0.0)],
/// );
/// let instance = Instance::new(network, vec![5.0], 14.0);
/// let plan = plan_greedy_fixed(&instance, &GreedyConfig::paper_default(1.0));
/// // Residual hits Δl = 1 at t = 4, 8, 12 — charged as late as possible.
/// assert_eq!(plan.charge_times(0), vec![4.0, 8.0, 12.0]);
/// ```
pub fn plan_greedy_fixed(instance: &Instance, cfg: &GreedyConfig) -> ScheduleSeries {
    assert!(cfg.tick > 0.0, "tick must be positive");
    assert!(cfg.threshold >= 0.0, "threshold must be non-negative");
    let network = instance.network();
    let cycles = instance.cycles();
    let horizon = instance.horizon();
    let n = network.n();

    let mut series = ScheduleSeries::new();
    if n == 0 {
        return series;
    }
    // last_charge[i]: time sensor i was last full (0 = initial charge).
    let mut last_charge = vec![0.0f64; n];
    let mut pending: Vec<usize> = Vec::with_capacity(n);

    let mut step: u64 = 1;
    loop {
        let t = step as f64 * cfg.tick;
        if t >= horizon {
            break;
        }
        pending.clear();
        for i in 0..n {
            // Residual lifetime at t under a constant rate B/τ.
            let residual = last_charge[i] + cycles[i] - t;
            if residual <= cfg.threshold + 1e-9 {
                pending.push(i);
            }
        }
        if !pending.is_empty() {
            let set = greedy_batch(network, &pending, cfg.polish_rounds);
            let id = series.add_set(set);
            series.push_dispatch(t, id);
            for &i in &pending {
                last_charge[i] = t;
            }
        }
        step += 1;
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;
    use perpetuum_geom::Point2;

    fn line_instance(cycles: Vec<f64>, horizon: f64) -> Instance {
        let n = cycles.len();
        let sensors: Vec<Point2> =
            (0..n).map(|i| Point2::new((i + 1) as f64 * 10.0, 0.0)).collect();
        let depots = vec![Point2::new(0.0, 0.0)];
        Instance::new(Network::new(sensors, depots), cycles, horizon)
    }

    #[test]
    fn single_sensor_charged_as_late_as_possible() {
        // τ = 5, Δl = tick = 1: residual hits 1 at t = 4, so charges at
        // 4, 8, 12, … while < T.
        let inst = line_instance(vec![5.0], 14.0);
        let s = plan_greedy_fixed(&inst, &GreedyConfig::paper_default(1.0));
        assert_eq!(s.charge_times(0), vec![4.0, 8.0, 12.0]);
        crate::feasibility::check_series(&inst, &s).unwrap();
    }

    #[test]
    fn urgent_sensor_charged_every_tick() {
        let inst = line_instance(vec![1.0], 5.0);
        let s = plan_greedy_fixed(&inst, &GreedyConfig::paper_default(1.0));
        assert_eq!(s.charge_times(0), vec![1.0, 2.0, 3.0, 4.0]);
        crate::feasibility::check_series(&inst, &s).unwrap();
    }

    #[test]
    fn batching_joins_aligned_sensors() {
        // Two sensors with τ = 3 request together every 2 ticks.
        let inst = line_instance(vec![3.0, 3.0], 9.0);
        let s = plan_greedy_fixed(&inst, &GreedyConfig::paper_default(1.0));
        // Each dispatch covers both sensors.
        for d in s.dispatches() {
            assert_eq!(s.set_of(d).sensors().len(), 2);
        }
        crate::feasibility::check_series(&inst, &s).unwrap();
    }

    #[test]
    fn always_feasible_on_mixed_cycles() {
        let inst = line_instance(vec![1.0, 2.5, 3.3, 7.9, 19.0, 50.0], 120.0);
        let s = plan_greedy_fixed(&inst, &GreedyConfig::paper_default(1.0));
        crate::feasibility::check_series(&inst, &s).unwrap();
        // Long-cycle sensors must be charged far less often than short ones.
        assert!(s.charge_times(5).len() < s.charge_times(0).len() / 10);
    }

    #[test]
    fn greedy_charges_each_sensor_near_its_cycle() {
        // Greedy's whole point: sensor with cycle τ gets charged roughly
        // every τ - Δl, i.e. close to the minimal possible frequency.
        let inst = line_instance(vec![10.0], 100.0);
        let s = plan_greedy_fixed(&inst, &GreedyConfig::paper_default(1.0));
        let times = s.charge_times(0);
        for w in times.windows(2) {
            assert!(w[1] - w[0] >= 9.0 - 1e-9);
            assert!(w[1] - w[0] <= 10.0 + 1e-9);
        }
    }

    #[test]
    fn empty_network() {
        let net = Network::new(vec![], vec![Point2::ORIGIN]);
        let inst = Instance::new(net, vec![], 10.0);
        let s = plan_greedy_fixed(&inst, &GreedyConfig::paper_default(1.0));
        assert_eq!(s.dispatch_count(), 0);
    }

    #[test]
    fn batch_routes_through_all_chargers() {
        let sensors = vec![Point2::new(1.0, 0.0), Point2::new(99.0, 0.0)];
        let depots = vec![Point2::new(0.0, 0.0), Point2::new(100.0, 0.0)];
        let network = Network::new(sensors, depots);
        let set = greedy_batch(&network, &[0, 1], 0);
        assert_eq!(set.sensors(), &[0, 1]);
        assert!((set.cost() - 4.0).abs() < 1e-9);
    }
}
