//! Anytime refinement of whole schedules (the `perpetuum-opt` adapter).
//!
//! Algorithm 2 routes every cumulative set `D_k` constructively — a
//! 2-approximation. [`refine`] takes a finished [`ScheduleSeries`] and a
//! [`Budget`] and runs the seeded local search of `perpetuum-opt`
//! (2-opt, Or-opt, cross-tour relocate/swap) over each distinct tour
//! set, through the same [`Metric`](perpetuum_graph::Metric)/`DistSource` abstraction the
//! planners use — large sparse instances never materialize a dense
//! matrix.
//!
//! Refinement is *schedule-safe by construction*: a tour set's sensor
//! union is invariant under every move kernel (only tour order and the
//! sensor→charger assignment inside the set change), and dispatch times
//! are untouched. Charge times — the only thing
//! [`feasibility::check_series`](crate::feasibility::check_series)
//! depends on — are therefore bit-identical before and after, so a
//! feasible plan stays feasible and an infeasible one is never silently
//! "repaired". The property tests in `tests/refine.rs` pin this.
//!
//! The step budget is divided between sets in proportion to
//! `dispatch-count × family size`, so sets that are driven often (the
//! low-`k` cumulative sets of the power-of-two grid) get the bulk of the
//! work — that is where a unit of tour-length gain multiplies into
//! service-cost gain. Sets no dispatch references are copied verbatim.

use crate::network::Network;
use crate::schedule::{ScheduleSeries, TourSet};
pub use perpetuum_opt::{Budget, RefineOutcome};
use perpetuum_opt::{RefineParams, Refiner, DEFAULT_CANDIDATES};

/// Family size below which exhaustive move scans beat k-NN candidate
/// lists (building a kd-tree for a handful of nodes is pure overhead).
const CANDIDATE_THRESHOLD: usize = 48;

/// Golden-ratio increment decorrelating per-set RNG streams.
const SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// What a [`refine`] call achieved, in service-cost terms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefineReport {
    /// `service_cost()` of the input series.
    pub constructive_cost: f64,
    /// `service_cost()` of the refined series (≤ constructive).
    pub refined_cost: f64,
    /// Candidate-move evaluations spent across all sets.
    pub steps: u64,
    /// Moves accepted across all sets.
    pub accepted: u64,
    /// Local-search passes completed across all sets.
    pub passes: u64,
    /// True when every refined set reached a local optimum within its
    /// share of the budget.
    pub converged: bool,
}

impl RefineReport {
    /// Fraction of the constructive service cost removed, in `[0, 1)`.
    pub fn improvement_ratio(&self) -> f64 {
        if self.constructive_cost > 0.0 {
            1.0 - self.refined_cost / self.constructive_cost
        } else {
            0.0
        }
    }
}

/// Refine one tour set in place of its constructive routing. Returns the
/// refined set (same sensors, same depots, cost ≤ input) and the raw
/// optimizer outcome.
pub fn refine_tour_set(
    network: &Network,
    set: &TourSet,
    budget: &Budget,
    seed: u64,
) -> (TourSet, RefineOutcome) {
    let src = network.dist_source();
    let tours: Vec<Vec<usize>> = set.tours().iter().map(|t| t.nodes().to_vec()).collect();
    let family: usize = tours.iter().map(Vec::len).sum();
    let mut refiner = Refiner::new(tours, &src, RefineParams::seeded(seed));
    if family >= CANDIDATE_THRESHOLD {
        refiner.set_candidates(network.points(), DEFAULT_CANDIDATES);
    }
    let outcome = refiner.run(budget);
    let refined = TourSet::new(refiner.into_tours(), &src, |v| network.is_depot(v));
    debug_assert_eq!(refined.sensors(), set.sensors(), "refinement changed set membership");
    (refined, outcome)
}

/// Refine every dispatched tour set of `series` under a shared `budget`,
/// returning the upgraded series and a cost report. Dispatch times, set
/// ids and per-set sensor membership are preserved exactly; only tour
/// geometry improves. Deterministic for a fixed `(seed, budget)` step
/// budget (a wall-clock cap can truncate earlier).
pub fn refine(
    network: &Network,
    series: &ScheduleSeries,
    budget: &Budget,
    seed: u64,
) -> (ScheduleSeries, RefineReport) {
    let constructive_cost = series.service_cost();
    let sets = series.sets();

    // Budget weight: how often each set is driven × how big it is.
    let mut uses = vec![0u64; sets.len()];
    for d in series.dispatches() {
        uses[d.set] += 1;
    }
    let weights: Vec<u64> = sets
        .iter()
        .zip(&uses)
        .map(|(s, &u)| u * s.tours().iter().map(|t| t.len() as u64).sum::<u64>())
        .collect();
    let total_weight: u64 = weights.iter().sum();

    let mut out = ScheduleSeries::new();
    let mut report = RefineReport {
        constructive_cost,
        refined_cost: 0.0,
        steps: 0,
        accepted: 0,
        passes: 0,
        converged: true,
    };
    for (k, set) in sets.iter().enumerate() {
        if weights[k] == 0 || total_weight == 0 {
            out.add_set(set.clone());
            continue;
        }
        let share =
            (budget.step_limit() as u128 * weights[k] as u128 / total_weight as u128) as u64;
        let mut slice = Budget::steps(share);
        if let Some(cap) = budget.time_cap() {
            slice = slice.with_time_cap(cap.mul_f64(weights[k] as f64 / total_weight as f64));
        }
        let (refined, outcome) = refine_tour_set(
            network,
            set,
            &slice,
            seed.wrapping_add((k as u64).wrapping_mul(SEED_STRIDE)),
        );
        report.steps += outcome.steps;
        report.accepted += outcome.accepted;
        report.passes += outcome.passes;
        report.converged &= outcome.converged;
        out.add_set(refined);
    }
    for d in series.dispatches() {
        out.push_dispatch(d.time, d.set);
    }
    report.refined_cost = out.service_cost();
    (out, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mtd::{plan_min_total_distance, MtdConfig};
    use crate::network::Instance;
    use perpetuum_geom::Point2;

    fn scattered(n: usize, q: usize, seed: u64) -> Instance {
        let mut s = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        let sensors: Vec<Point2> =
            (0..n).map(|_| Point2::new(next() * 100.0, next() * 100.0)).collect();
        let depots: Vec<Point2> =
            (0..q).map(|_| Point2::new(next() * 100.0, next() * 100.0)).collect();
        let network = Network::new(sensors, depots);
        let cycles = vec![8.0; n];
        Instance::new(network, cycles, 40.0)
    }

    #[test]
    fn refine_cuts_cost_and_preserves_feasibility_surface() {
        let instance = scattered(60, 3, 9);
        let plan = plan_min_total_distance(&instance, &MtdConfig::default());
        let (refined, report) = refine(instance.network(), &plan, &Budget::steps(400_000), 42);
        assert!(report.refined_cost <= report.constructive_cost + 1e-9);
        assert!(report.improvement_ratio() > 0.0, "no gain on a random instance");
        // Same sets, same membership, same dispatch grid.
        assert_eq!(refined.sets().len(), plan.sets().len());
        for (a, b) in refined.sets().iter().zip(plan.sets()) {
            assert_eq!(a.sensors(), b.sensors());
            assert!(a.cost() <= b.cost() + 1e-9);
        }
        assert_eq!(refined.dispatches(), plan.dispatches());
    }

    #[test]
    fn zero_budget_is_an_exact_copy() {
        let instance = scattered(30, 2, 4);
        let plan = plan_min_total_distance(&instance, &MtdConfig::default());
        let (copy, report) = refine(instance.network(), &plan, &Budget::steps(0), 1);
        assert_eq!(report.refined_cost, report.constructive_cost);
        assert_eq!(report.accepted, 0);
        for (a, b) in copy.sets().iter().zip(plan.sets()) {
            assert_eq!(a.tours(), b.tours());
        }
    }

    #[test]
    fn undispatched_sets_are_copied_verbatim() {
        let instance = scattered(20, 2, 7);
        let plan = plan_min_total_distance(&instance, &MtdConfig::default());
        let mut series = ScheduleSeries::new();
        for set in plan.sets() {
            series.add_set(set.clone());
        }
        // Dispatch only set 0: all other sets must come back untouched.
        series.push_dispatch(0.0, 0);
        let (refined, _) = refine(instance.network(), &series, &Budget::steps(100_000), 5);
        for (k, (a, b)) in refined.sets().iter().zip(series.sets()).enumerate().skip(1) {
            assert_eq!(a.tours(), b.tours(), "undispatched set {k} was modified");
        }
    }
}
