//! **`MinTotalDistance-var`** — replanning under variable maximum charging
//! cycles (Section VI.B).
//!
//! When the base station learns that sensor cycles have drifted out of the
//! applicability band `[τ̂', 2τ̂')` of the current plan, it recomputes:
//!
//! 1. run Algorithm 3 on the *updated* maximum cycles `τ̂_i(t)`, producing
//!    schedulings at `t + j·τ̂_1(t)`;
//! 2. that plan assumed all sensors full at `t`, which they are not — the
//!    set `V^a = { v_i : l̂_i(t) < τ̂'_i(t) }` cannot survive to their first
//!    scheduled charge. Repair: sensors with `l̂_i < τ̂_1` form an immediate
//!    extra scheduling `(C'_0, t)`; the remaining `V^a` sensors are split
//!    into classes `V^a_k` by residual lifetime (`2^k τ̂_1 ≤ l̂_i <
//!    2^(k+1) τ̂_1`) and, class by class, attached to the *nearest* of the
//!    first `2^k + 1` schedulings via a `q`-rooted MSF whose super-roots
//!    are the schedulings themselves (distance of a sensor to a super-root
//!    = nearest distance to any node already in that scheduling);
//! 3. the modified first `2^K + 1` schedulings are re-routed with
//!    Algorithm 2; all later schedulings reuse the unmodified Algorithm 3
//!    tour sets.

// BTreeMaps, not HashMaps: modified-set construction iterates these, and
// set insertion order must be deterministic for byte-identical replans.
use std::collections::BTreeMap;

use crate::mtd::{nu2, push_dispatch_timeline};
use crate::network::Network;
use crate::qmsf::{rooted_msf_general, rooted_msf_points, RootedForest, SPARSE_MSF_K};
use crate::qtsp::{q_rooted_tsp_src, q_rooted_tsp_with_forest_src, QTours};
use crate::rounding::{partition_cycles, power_class, CyclePartition};
use crate::schedule::{ScheduleSeries, TourSet};
use perpetuum_geom::Point2;
use perpetuum_graph::{DistSource, Metric};

/// Inputs to one replanning round at time `now`.
#[derive(Debug, Clone, Copy)]
pub struct VarInput<'a> {
    /// Network geometry.
    pub network: &'a Network,
    /// Updated maximum charging cycles `τ̂_i(now)`, one per sensor.
    pub max_cycles: &'a [f64],
    /// Estimated residual lifetimes `l̂_i(now)`, one per sensor.
    pub residuals: &'a [f64],
    /// Replan time `t`.
    pub now: f64,
    /// Monitoring period end `T`.
    pub horizon: f64,
    /// Local-search rounds per tour (ablation only, 0 = paper).
    pub polish_rounds: usize,
}

/// Output of a replanning round.
#[derive(Debug, Clone)]
pub struct VarPlan {
    /// Dispatches from `now` (inclusive) to the horizon (exclusive), in
    /// time order.
    pub series: ScheduleSeries,
    /// The cycle `τ̂'_i` each sensor is charged at in this plan — the base
    /// station stores these for the next applicability test.
    pub assigned_cycles: Vec<f64>,
    /// Indices (into `series.sets()`) of the unmodified Algorithm-3 base
    /// tour sets `B_0 … B_K`, in class order — an incremental replanner can
    /// re-route one class and retarget exactly these sets' future
    /// dispatches. Empty for an empty network.
    pub base_set_ids: Vec<usize>,
}

/// How `V^a` sensors are attached to early schedulings — the
/// nearest-scheduling MSF of the paper versus a naive "charge all of `V^a`
/// immediately" repair (ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RepairStrategy {
    /// The paper's Section VI.B construction.
    #[default]
    NearestScheduling,
    /// Append all of `V^a` to the immediate scheduling `(C'_0, t)`.
    ChargeAllNow,
}

/// Runs one `MinTotalDistance-var` replanning round with the paper's
/// repair strategy.
pub fn replan_variable(input: &VarInput) -> VarPlan {
    replan_variable_with(input, RepairStrategy::NearestScheduling)
}

/// Replanning with an explicit [`RepairStrategy`] (for the repair
/// ablation bench).
pub fn replan_variable_with(input: &VarInput, repair: RepairStrategy) -> VarPlan {
    if input.network.n() == 0 {
        assert!(input.now < input.horizon, "replanning after the horizon");
        return VarPlan {
            series: ScheduleSeries::new(),
            assigned_cycles: Vec::new(),
            base_set_ids: Vec::new(),
        };
    }
    replan_variable_detailed(input, repair).plan
}

/// Everything a replanning round computed, beyond the plan itself: the
/// cycle partition and, per class `k`, the `q`-rooted forest and tours of
/// the unmodified base set `D_k`. [`crate::incremental::IncrementalPlanner`]
/// seeds its persistent per-class state from these instead of rebuilding
/// them from scratch.
#[derive(Debug)]
pub struct VarDetailed {
    /// The plan, bit-identical to [`replan_variable_with`].
    pub plan: VarPlan,
    /// The power-of-two cycle partition behind the plan.
    pub partition: CyclePartition,
    /// `(forest, tours)` of the base set `D_k`, indexed by class `k`.
    pub base_builds: Vec<(RootedForest, QTours)>,
}

/// Like [`replan_variable_with`], but keeps the intermediate per-class
/// builds (see [`VarDetailed`]). Requires a non-empty network.
pub fn replan_variable_detailed(input: &VarInput, repair: RepairStrategy) -> VarDetailed {
    let network = input.network;
    let n = network.n();
    assert!(n > 0, "detailed replanning needs at least one sensor");
    assert_eq!(input.max_cycles.len(), n, "one max cycle per sensor");
    assert_eq!(input.residuals.len(), n, "one residual per sensor");
    assert!(input.now < input.horizon, "replanning after the horizon");

    let mut series = ScheduleSeries::new();

    let partition = partition_cycles(input.max_cycles);
    let tau1 = partition.tau1;
    let k_max = partition.k_max();
    assert!(k_max <= 30, "cycle spread τ_max/τ_min ≈ 2^{k_max} is beyond any sane instance");
    let period_slots: u64 = 1 << k_max; // 2^K dispatches per super-period

    // Cumulative base sets D_0 ⊂ … ⊂ D_K (sensor ids).
    let cums: Vec<Vec<usize>> = (0..=k_max).map(|k| partition.cumulative(k)).collect();

    // --- Repair bookkeeping -------------------------------------------------
    // `added[j]` — extra sensors attached to the j-th early scheduling
    // (j = 0 is the immediate extra scheduling at `now`).
    let mut added: BTreeMap<u64, Vec<usize>> = BTreeMap::new();

    // V^a: sensors whose residual cannot reach their first scheduled charge.
    let mut va: Vec<usize> =
        (0..n).filter(|&i| input.residuals[i] + 1e-12 < partition.rounded[i]).collect();

    match repair {
        RepairStrategy::ChargeAllNow => {
            if !va.is_empty() {
                added.insert(0, va);
            }
        }
        RepairStrategy::NearestScheduling => {
            // V^a_t: must be charged right now.
            let urgent: Vec<usize> =
                va.iter().copied().filter(|&i| input.residuals[i] < tau1).collect();
            if !urgent.is_empty() {
                added.insert(0, urgent);
            }
            va.retain(|&i| input.residuals[i] >= tau1);

            // Class V^a_k by residual lifetime.
            let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); k_max + 1];
            for &i in &va {
                let k = power_class(tau1, input.residuals[i]).min(k_max);
                by_class[k].push(i);
            }

            // Iteration k: attach V^a_k terminals to the nearest of the
            // schedulings j = 0 … 2^k. Distances go through the network's
            // `DistSource`, so sparse instances never materialize a matrix:
            // dense sources keep the exact contracted MSF, point sources
            // run the k-NN super-root construction over terminal positions.
            let depot_nodes = network.depot_nodes();
            let src = network.dist_source();
            for (k, terminals) in by_class.iter().enumerate() {
                if terminals.is_empty() {
                    continue;
                }
                let term_nodes: Vec<usize> =
                    terminals.iter().map(|&i| network.sensor_node(i)).collect();
                let mut root_dist: Vec<Vec<f64>> = Vec::with_capacity((1usize << k) + 1);
                for j in 0..=(1u64 << k) {
                    root_dist.push(scheduling_distance_row(
                        &src,
                        network,
                        &term_nodes,
                        base_sensors_of(j, k_max, &cums),
                        added.get(&j).map(|v| v.as_slice()).unwrap_or(&[]),
                        &depot_nodes,
                    ));
                }
                let forest = match src {
                    DistSource::Dense(d) => rooted_msf_general(&d.induced(&term_nodes), &root_dist),
                    DistSource::Points(p) => {
                        let tpts: Vec<Point2> = term_nodes.iter().map(|&v| p[v]).collect();
                        rooted_msf_points(&tpts, &root_dist, SPARSE_MSF_K)
                    }
                };
                for (t_idx, &j) in forest.assignment.iter().enumerate() {
                    added.entry(j as u64).or_default().push(terminals[t_idx]);
                }
            }
        }
    }

    // --- Tour construction --------------------------------------------------
    let depot_nodes = network.depot_nodes();
    let route = |sensors: &[usize]| -> TourSet {
        let nodes: Vec<usize> = sensors.iter().map(|&i| network.sensor_node(i)).collect();
        let qt =
            q_rooted_tsp_src(&network.dist_source(), &nodes, &depot_nodes, input.polish_rounds);
        TourSet::from_qtours(qt, |v| v >= n)
    };

    // Base tour sets B_0 … B_K (unmodified Algorithm 3 schedulings). The
    // forest behind each set is kept so the incremental planner can seed
    // its persistent per-class state from this exact build.
    let mut base_builds: Vec<(RootedForest, QTours)> = Vec::with_capacity(k_max + 1);
    let base_ids: Vec<usize> = cums
        .iter()
        .map(|d| {
            let nodes: Vec<usize> = d.iter().map(|&i| network.sensor_node(i)).collect();
            let (qt, forest) = q_rooted_tsp_with_forest_src(
                &network.dist_source(),
                &nodes,
                &depot_nodes,
                input.polish_rounds,
            );
            let id = series.add_set(TourSet::from_qtours(qt.clone(), |v| v >= n));
            base_builds.push((forest, qt));
            id
        })
        .collect();

    // Modified early schedulings.
    let mut modified_ids: BTreeMap<u64, usize> = BTreeMap::new();
    for (&j, extra) in &added {
        let mut sensors: Vec<usize> = base_sensors_of(j, k_max, &cums).to_vec();
        sensors.extend_from_slice(extra);
        sensors.sort_unstable();
        sensors.dedup();
        modified_ids.insert(j, series.add_set(route(&sensors)));
    }

    // --- Dispatch timeline ---------------------------------------------------
    if let Some(&id0) = modified_ids.get(&0) {
        series.push_dispatch(input.now, id0);
    }
    // First super-period: modified sets where present.
    let mut j: u64 = 1;
    loop {
        let t = input.now + j as f64 * tau1;
        if t >= input.horizon || j > period_slots {
            break;
        }
        let k = nu2(j).min(k_max);
        let id = modified_ids.get(&j).copied().unwrap_or(base_ids[k]);
        series.push_dispatch(t, id);
        j += 1;
    }
    // Remaining periods: pure Algorithm 3 pattern, continuing the count.
    if j > period_slots {
        let start = input.now + period_slots as f64 * tau1;
        push_dispatch_timeline(&mut series, &base_ids, tau1, k_max, start, input.horizon);
    }

    let plan =
        VarPlan { series, assigned_cycles: partition.rounded.clone(), base_set_ids: base_ids };
    VarDetailed { plan, partition, base_builds }
}

/// Base sensors of early scheduling `j` (`j = 0` is the extra immediate
/// scheduling, base-empty).
fn base_sensors_of(j: u64, k_max: usize, cums: &[Vec<usize>]) -> &[usize] {
    if j == 0 {
        &[]
    } else {
        &cums[nu2(j).min(k_max)]
    }
}

/// Distance from each terminal node to the nearest node of a scheduling
/// (its base sensors ∪ repair additions ∪ all depots).
fn scheduling_distance_row<M: Metric>(
    dist: &M,
    network: &Network,
    term_nodes: &[usize],
    base: &[usize],
    extra: &[usize],
    depot_nodes: &[usize],
) -> Vec<f64> {
    term_nodes
        .iter()
        .map(|&t| {
            let mut best = f64::INFINITY;
            for &d in depot_nodes {
                best = best.min(dist.get(t, d));
            }
            for &s in base.iter().chain(extra.iter()) {
                best = best.min(dist.get(t, network.sensor_node(s)));
            }
            best
        })
        .collect()
}

/// Checks a [`VarPlan`] against the replan inputs, assuming cycles stay at
/// `max_cycles` from `now` on: every sensor's first charge must come within
/// its residual lifetime, later gaps within its max cycle, and the tail gap
/// to the horizon within its max cycle. The test oracle for this module.
pub fn check_var_plan(input: &VarInput, plan: &VarPlan) -> Result<(), Vec<String>> {
    let mut errors = Vec::new();
    for i in 0..input.max_cycles.len() {
        let times = plan.series.charge_times(input.network.sensor_node(i));
        let tau = input.max_cycles[i];
        let deadline = input.now + input.residuals[i];
        match times.first() {
            None => {
                if input.horizon > deadline + 1e-9 {
                    errors.push(format!(
                        "sensor {i}: never charged but dies at {deadline} < horizon"
                    ));
                }
                continue;
            }
            Some(&first) => {
                if first > deadline + 1e-9 {
                    errors.push(format!(
                        "sensor {i}: first charge {first} after death at {deadline}"
                    ));
                }
            }
        }
        for w in times.windows(2) {
            if w[1] - w[0] > tau + 1e-9 {
                errors.push(format!("sensor {i}: gap {} exceeds cycle {tau}", w[1] - w[0]));
            }
        }
        if input.horizon - times.last().unwrap() > tau + 1e-9 {
            errors.push(format!("sensor {i}: tail gap exceeds cycle {tau}"));
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perpetuum_geom::Point2;
    use rand::{Rng, SeedableRng};

    fn grid_network(n: usize, q: usize, seed: u64) -> Network {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let sensors: Vec<Point2> = (0..n)
            .map(|_| Point2::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0)))
            .collect();
        let mut depots = vec![Point2::new(500.0, 500.0)];
        depots.extend(
            (1..q).map(|_| Point2::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0))),
        );
        Network::new(sensors, depots)
    }

    #[test]
    fn full_batteries_reduce_to_algorithm_3() {
        // residual == max cycle for everyone → V^a empty → same dispatch
        // pattern as plan_min_total_distance shifted by `now`.
        let network = grid_network(20, 3, 1);
        let cycles: Vec<f64> = (0..20).map(|i| 1.0 + (i % 7) as f64).collect();
        let input = VarInput {
            network: &network,
            max_cycles: &cycles,
            residuals: &cycles.clone(),
            now: 0.0,
            horizon: 50.0,
            polish_rounds: 0,
        };
        let plan = replan_variable(&input);
        check_var_plan(&input, &plan).unwrap();

        let inst = crate::network::Instance::new(network.clone(), cycles.clone(), 50.0);
        let mtd = crate::mtd::plan_min_total_distance(&inst, &crate::mtd::MtdConfig::default());
        assert_eq!(plan.series.dispatch_count(), mtd.dispatch_count());
        assert!((plan.series.service_cost() - mtd.service_cost()).abs() < 1e-6);
    }

    #[test]
    fn urgent_sensor_charged_immediately() {
        let network = grid_network(10, 2, 2);
        let cycles = vec![4.0; 10];
        let mut residuals = vec![4.0; 10];
        residuals[3] = 0.5; // dies before τ_1 = 4
        let input = VarInput {
            network: &network,
            max_cycles: &cycles,
            residuals: &residuals,
            now: 10.0,
            horizon: 40.0,
            polish_rounds: 0,
        };
        let plan = replan_variable(&input);
        let times = plan.series.charge_times(3);
        assert_eq!(times[0], 10.0, "urgent sensor must be charged at `now`");
        check_var_plan(&input, &plan).unwrap();
    }

    #[test]
    fn low_residual_sensors_attached_early() {
        let network = grid_network(12, 2, 3);
        // All cycles 8; some sensors have drained to residual 2.5 — they
        // belong to V^a_1 (2 ≤ 2.5 < 4 with τ_1 = 8? no: τ_1 = 8 means
        // V^a_t). Use mixed cycles so τ_1 = 1.
        let mut cycles = vec![8.0; 12];
        cycles[0] = 1.0; // forces τ_1 = 1
        let mut residuals = cycles.clone();
        residuals[5] = 2.5; // class 1: charged by scheduling j ≤ 2
        residuals[7] = 5.0; // class 2: charged by scheduling j ≤ 4
        let input = VarInput {
            network: &network,
            max_cycles: &cycles,
            residuals: &residuals,
            now: 0.0,
            horizon: 64.0,
            polish_rounds: 0,
        };
        let plan = replan_variable(&input);
        check_var_plan(&input, &plan).unwrap();
        let t5 = plan.series.charge_times(5);
        assert!(t5[0] <= 2.5 + 1e-9, "sensor 5 first charge {}", t5[0]);
        let t7 = plan.series.charge_times(7);
        assert!(t7[0] <= 5.0 + 1e-9, "sensor 7 first charge {}", t7[0]);
    }

    #[test]
    fn random_replans_always_feasible() {
        for seed in 0..12u64 {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed + 400);
            let n = rng.gen_range(5..40);
            let network = grid_network(n, rng.gen_range(1..5), seed);
            let cycles: Vec<f64> = (0..n).map(|_| rng.gen_range(1.0..50.0)).collect();
            let residuals: Vec<f64> = cycles.iter().map(|&c| rng.gen_range(0.05..=c)).collect();
            let now = rng.gen_range(0.0..500.0);
            let input = VarInput {
                network: &network,
                max_cycles: &cycles,
                residuals: &residuals,
                now,
                horizon: now + rng.gen_range(10.0..500.0),
                polish_rounds: 0,
            };
            let plan = replan_variable(&input);
            check_var_plan(&input, &plan).unwrap_or_else(|e| panic!("seed {seed}: {e:?}"));
            // The naive repair must be feasible too.
            let naive = replan_variable_with(&input, RepairStrategy::ChargeAllNow);
            check_var_plan(&input, &naive).unwrap_or_else(|e| panic!("seed {seed} (naive): {e:?}"));
        }
    }

    #[test]
    fn nearest_repair_no_worse_than_naive_on_average() {
        // Not guaranteed per instance, but across a batch the nearest-
        // scheduling insertion should beat charging everything at once.
        let mut nearest_total = 0.0;
        let mut naive_total = 0.0;
        for seed in 0..10u64 {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed + 900);
            let n = 30;
            let network = grid_network(n, 3, seed + 50);
            let mut cycles: Vec<f64> = (0..n).map(|_| rng.gen_range(1.0..50.0)).collect();
            cycles[0] = 1.0;
            let residuals: Vec<f64> = cycles.iter().map(|&c| rng.gen_range(0.5..=c)).collect();
            let input = VarInput {
                network: &network,
                max_cycles: &cycles,
                residuals: &residuals,
                now: 0.0,
                horizon: 100.0,
                polish_rounds: 0,
            };
            nearest_total += replan_variable(&input).series.service_cost();
            naive_total +=
                replan_variable_with(&input, RepairStrategy::ChargeAllNow).series.service_cost();
        }
        assert!(
            nearest_total <= naive_total * 1.05,
            "nearest {nearest_total} vs naive {naive_total}"
        );
    }

    #[test]
    fn assigned_cycles_are_rounded_cycles() {
        let network = grid_network(6, 2, 9);
        let cycles = vec![1.0, 1.5, 2.0, 3.0, 4.0, 50.0];
        let input = VarInput {
            network: &network,
            max_cycles: &cycles,
            residuals: &cycles.clone(),
            now: 0.0,
            horizon: 64.0,
            polish_rounds: 0,
        };
        let plan = replan_variable(&input);
        assert_eq!(plan.assigned_cycles, vec![1.0, 1.0, 2.0, 2.0, 4.0, 32.0]);
    }

    #[test]
    fn sparse_replan_never_builds_dense_matrix() {
        // Regression: the V^a repair used to call `network.dist()`, which
        // panics (and would otherwise allocate Θ(n²)) on sparse networks.
        // A sparse-constructed network must replan through the `Points`
        // source end to end and still produce a feasible plan.
        for seed in 0..6u64 {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed + 700);
            let n = rng.gen_range(10..60);
            let sensors: Vec<Point2> = (0..n)
                .map(|_| Point2::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0)))
                .collect();
            let depots = vec![Point2::new(500.0, 500.0), Point2::new(100.0, 900.0)];
            let network = Network::sparse(sensors, depots);
            assert!(!network.has_dense_matrix());
            assert!(
                matches!(network.dist_source(), perpetuum_graph::DistSource::Points(_)),
                "sparse network must expose a Points source"
            );
            // Mixed cycles and drained residuals force every repair branch
            // (urgent + several V^a classes) through the sparse path.
            let mut cycles: Vec<f64> = (0..n).map(|_| rng.gen_range(1.0..50.0)).collect();
            cycles[0] = 1.0;
            let residuals: Vec<f64> = cycles.iter().map(|&c| rng.gen_range(0.05..=c)).collect();
            let input = VarInput {
                network: &network,
                max_cycles: &cycles,
                residuals: &residuals,
                now: 3.0,
                horizon: 120.0,
                polish_rounds: 0,
            };
            let plan = replan_variable(&input);
            check_var_plan(&input, &plan).unwrap_or_else(|e| panic!("seed {seed}: {e:?}"));
            assert!(!network.has_dense_matrix(), "replan must not densify the network");
        }
    }

    #[test]
    fn base_set_ids_reference_the_cumulative_classes() {
        let network = grid_network(8, 2, 13);
        let cycles = vec![1.0, 1.0, 2.5, 3.0, 5.0, 9.0, 17.0, 40.0];
        let input = VarInput {
            network: &network,
            max_cycles: &cycles,
            residuals: &cycles.clone(),
            now: 0.0,
            horizon: 64.0,
            polish_rounds: 0,
        };
        let plan = replan_variable(&input);
        let partition = partition_cycles(&cycles);
        assert_eq!(plan.base_set_ids.len(), partition.k_max() + 1);
        for (k, &id) in plan.base_set_ids.iter().enumerate() {
            let covered = plan.series.sets()[id].sensors();
            assert_eq!(covered, partition.cumulative(k).as_slice(), "class {k}");
        }
    }

    #[test]
    fn empty_network_ok() {
        let network = Network::new(vec![], vec![Point2::ORIGIN]);
        let input = VarInput {
            network: &network,
            max_cycles: &[],
            residuals: &[],
            now: 0.0,
            horizon: 10.0,
            polish_rounds: 0,
        };
        let plan = replan_variable(&input);
        assert_eq!(plan.series.dispatch_count(), 0);
    }
}
