//! The network model of Section III: sensors, depots and the metric
//! complete graph `G = (V ∪ R, E; w)` over them.

use perpetuum_geom::Point2;
use perpetuum_graph::{DistMatrix, DistSource};

/// A sensor index, `0..n`.
pub type SensorId = usize;

/// The geometry of a WSN charging problem: sensor and depot positions plus
/// the Euclidean metric closure over all of them.
///
/// Node-id convention used across the whole workspace: node `i < n` is
/// sensor `i`; node `n + l` is depot `l` (`0 ≤ l < q`). Charging cycles are
/// deliberately *not* part of this type — the fixed-cycle planners take an
/// [`Instance`], while the variable-cycle machinery re-estimates cycles
/// continuously and passes them explicitly.
#[derive(Debug, Clone)]
pub struct Network {
    sensor_pos: Vec<Point2>,
    depot_pos: Vec<Point2>,
    /// All node positions in id order (sensors then depots) — the backing
    /// store for the on-demand [`DistSource::Points`] representation.
    all_pos: Vec<Point2>,
    /// Dense metric closure; `None` for sparse networks, where distances
    /// are computed on demand from `all_pos`.
    dist: Option<DistMatrix>,
}

impl Network {
    /// Node count up to which [`Network::auto`] materializes the dense
    /// matrix. At 4096 nodes the matrix is 128 MB of f64 — above that the
    /// sparse representation wins on memory *and* build time.
    pub const DENSE_NODE_THRESHOLD: usize = 4096;

    /// Builds the metric complete graph over `sensors ∪ depots`, always
    /// materializing the dense matrix (the representation every planner
    /// accepted historically; use [`Network::sparse`] or [`Network::auto`]
    /// to avoid the `Θ((n+q)²)` memory).
    ///
    /// # Panics
    /// Panics when there are no depots (the paper requires `q ≥ 1`) or any
    /// coordinate is non-finite.
    pub fn new(sensors: Vec<Point2>, depots: Vec<Point2>) -> Self {
        let mut net = Self::sparse(sensors, depots);
        net.dist = Some(DistMatrix::from_points(&net.all_pos));
        net
    }

    /// Builds the network *without* a dense matrix: distances come from
    /// positions on demand, planning runs through the sparse pipeline.
    /// Same panics as [`Network::new`].
    pub fn sparse(sensors: Vec<Point2>, depots: Vec<Point2>) -> Self {
        assert!(!depots.is_empty(), "at least one depot (mobile charger) is required");
        assert!(
            sensors.iter().chain(depots.iter()).all(|p| p.is_finite()),
            "positions must be finite"
        );
        let all: Vec<Point2> = sensors.iter().chain(depots.iter()).copied().collect();
        Self { sensor_pos: sensors, depot_pos: depots, all_pos: all, dist: None }
    }

    /// Dense up to [`Network::DENSE_NODE_THRESHOLD`] nodes, sparse above —
    /// the constructor experiment drivers should default to.
    pub fn auto(sensors: Vec<Point2>, depots: Vec<Point2>) -> Self {
        if sensors.len() + depots.len() <= Self::DENSE_NODE_THRESHOLD {
            Self::new(sensors, depots)
        } else {
            Self::sparse(sensors, depots)
        }
    }

    /// Number of sensors `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.sensor_pos.len()
    }

    /// Number of depots / mobile chargers `q`.
    #[inline]
    pub fn q(&self) -> usize {
        self.depot_pos.len()
    }

    /// Total node count `n + q`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.n() + self.q()
    }

    /// Node id of sensor `i`.
    #[inline]
    pub fn sensor_node(&self, i: SensorId) -> usize {
        debug_assert!(i < self.n());
        i
    }

    /// Node id of depot `l`.
    #[inline]
    pub fn depot_node(&self, l: usize) -> usize {
        debug_assert!(l < self.q());
        self.n() + l
    }

    /// All depot node ids, in depot order.
    pub fn depot_nodes(&self) -> Vec<usize> {
        (self.n()..self.node_count()).collect()
    }

    /// True when `node` is a depot.
    #[inline]
    pub fn is_depot(&self, node: usize) -> bool {
        node >= self.n() && node < self.node_count()
    }

    /// Position of sensor `i`.
    #[inline]
    pub fn sensor_pos(&self, i: SensorId) -> Point2 {
        self.sensor_pos[i]
    }

    /// All sensor positions.
    #[inline]
    pub fn sensor_positions(&self) -> &[Point2] {
        &self.sensor_pos
    }

    /// Position of depot `l`.
    #[inline]
    pub fn depot_pos(&self, l: usize) -> Point2 {
        self.depot_pos[l]
    }

    /// All `n + q` node positions in node-id order (sensors then depots).
    #[inline]
    pub fn points(&self) -> &[Point2] {
        &self.all_pos
    }

    /// True when the dense matrix is materialized.
    #[inline]
    pub fn has_dense_matrix(&self) -> bool {
        self.dist.is_some()
    }

    /// The distance source over all `n + q` nodes: the dense matrix when
    /// materialized, on-demand point distances otherwise. Planners should
    /// take this (via the `_src` entry points) rather than [`Network::dist`].
    #[inline]
    pub fn dist_source(&self) -> DistSource<'_> {
        match &self.dist {
            Some(d) => DistSource::Dense(d),
            None => DistSource::Points(&self.all_pos),
        }
    }

    /// The dense distance matrix over all `n + q` nodes.
    ///
    /// # Panics
    /// Panics on a sparse network — callers that can handle both
    /// representations should use [`Network::dist_source`].
    #[inline]
    pub fn dist(&self) -> &DistMatrix {
        self.dist
            .as_ref()
            .expect("dense matrix not materialized (sparse network) — use dist_source()")
    }
}

/// A fixed-maximum-charging-cycle problem instance (Section V): the
/// network, a cycle `τ_i > 0` per sensor, and the monitoring period `T`.
#[derive(Debug, Clone)]
pub struct Instance {
    network: Network,
    cycles: Vec<f64>,
    horizon: f64,
}

impl Instance {
    /// # Panics
    /// Panics when `cycles.len() != network.n()`, any cycle is not strictly
    /// positive and finite, or the horizon is not positive.
    pub fn new(network: Network, cycles: Vec<f64>, horizon: f64) -> Self {
        assert_eq!(cycles.len(), network.n(), "one maximum charging cycle per sensor");
        assert!(
            cycles.iter().all(|&t| t > 0.0 && t.is_finite()),
            "cycles must be positive and finite"
        );
        assert!(horizon > 0.0 && horizon.is_finite(), "horizon must be positive");
        Self { network, cycles, horizon }
    }

    /// The underlying network geometry.
    #[inline]
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Maximum charging cycles `τ_i`.
    #[inline]
    pub fn cycles(&self) -> &[f64] {
        &self.cycles
    }

    /// Monitoring period `T`.
    #[inline]
    pub fn horizon(&self) -> f64 {
        self.horizon
    }

    /// Shorthand for `network().n()`.
    #[inline]
    pub fn n(&self) -> usize {
        self.network.n()
    }

    /// Shorthand for `network().q()`.
    #[inline]
    pub fn q(&self) -> usize {
        self.network.q()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Network {
        Network::new(
            vec![Point2::new(1.0, 0.0), Point2::new(0.0, 2.0)],
            vec![Point2::new(0.0, 0.0), Point2::new(5.0, 5.0)],
        )
    }

    #[test]
    fn node_id_convention() {
        let net = tiny();
        assert_eq!(net.n(), 2);
        assert_eq!(net.q(), 2);
        assert_eq!(net.node_count(), 4);
        assert_eq!(net.sensor_node(1), 1);
        assert_eq!(net.depot_node(0), 2);
        assert_eq!(net.depot_nodes(), vec![2, 3]);
        assert!(!net.is_depot(1));
        assert!(net.is_depot(2));
        assert!(!net.is_depot(4));
    }

    #[test]
    fn distances_cover_sensor_depot_pairs() {
        let net = tiny();
        assert_eq!(net.dist().get(0, 2), 1.0); // sensor 0 to depot 0
        assert_eq!(net.dist().get(1, 2), 2.0); // sensor 1 to depot 0
        assert!(net.dist().is_metric(1e-9));
    }

    #[test]
    fn sparse_network_serves_identical_distances() {
        use perpetuum_graph::Metric;
        let dense = tiny();
        let sparse = Network::sparse(
            vec![Point2::new(1.0, 0.0), Point2::new(0.0, 2.0)],
            vec![Point2::new(0.0, 0.0), Point2::new(5.0, 5.0)],
        );
        assert!(dense.has_dense_matrix());
        assert!(!sparse.has_dense_matrix());
        assert!(sparse.dist_source().positions().is_some());
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(
                    dense.dist_source().get(i, j),
                    sparse.dist_source().get(i, j),
                    "({i},{j})"
                );
            }
        }
        assert_eq!(sparse.points().len(), 4);
    }

    #[test]
    #[should_panic(expected = "use dist_source()")]
    fn sparse_network_has_no_dense_matrix() {
        let net = Network::sparse(vec![Point2::ORIGIN], vec![Point2::new(1.0, 0.0)]);
        let _ = net.dist();
    }

    #[test]
    fn auto_picks_representation_by_size() {
        let small = Network::auto(vec![Point2::ORIGIN], vec![Point2::new(1.0, 0.0)]);
        assert!(small.has_dense_matrix());
        let many: Vec<Point2> =
            (0..Network::DENSE_NODE_THRESHOLD).map(|i| Point2::new(i as f64, 0.0)).collect();
        let big = Network::auto(many, vec![Point2::new(0.0, 1.0)]);
        assert!(!big.has_dense_matrix());
    }

    #[test]
    fn zero_sensor_network_is_allowed() {
        let net = Network::new(vec![], vec![Point2::ORIGIN]);
        assert_eq!(net.n(), 0);
        assert_eq!(net.depot_nodes(), vec![0]);
    }

    #[test]
    #[should_panic(expected = "at least one depot")]
    fn rejects_zero_depots() {
        Network::new(vec![Point2::ORIGIN], vec![]);
    }

    #[test]
    fn instance_validation() {
        let inst = Instance::new(tiny(), vec![1.0, 4.0], 100.0);
        assert_eq!(inst.cycles(), &[1.0, 4.0]);
        assert_eq!(inst.horizon(), 100.0);
        assert_eq!(inst.n(), 2);
        assert_eq!(inst.q(), 2);
    }

    #[test]
    #[should_panic(expected = "one maximum charging cycle per sensor")]
    fn instance_rejects_wrong_cycle_count() {
        Instance::new(tiny(), vec![1.0], 100.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn instance_rejects_nonpositive_cycle() {
        Instance::new(tiny(), vec![1.0, 0.0], 100.0);
    }

    #[test]
    #[should_panic(expected = "horizon")]
    fn instance_rejects_bad_horizon() {
        Instance::new(tiny(), vec![1.0, 1.0], 0.0);
    }
}
