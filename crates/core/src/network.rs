//! The network model of Section III: sensors, depots and the metric
//! complete graph `G = (V ∪ R, E; w)` over them.

use perpetuum_geom::Point2;
use perpetuum_graph::DistMatrix;

/// A sensor index, `0..n`.
pub type SensorId = usize;

/// The geometry of a WSN charging problem: sensor and depot positions plus
/// the Euclidean metric closure over all of them.
///
/// Node-id convention used across the whole workspace: node `i < n` is
/// sensor `i`; node `n + l` is depot `l` (`0 ≤ l < q`). Charging cycles are
/// deliberately *not* part of this type — the fixed-cycle planners take an
/// [`Instance`], while the variable-cycle machinery re-estimates cycles
/// continuously and passes them explicitly.
#[derive(Debug, Clone)]
pub struct Network {
    sensor_pos: Vec<Point2>,
    depot_pos: Vec<Point2>,
    dist: DistMatrix,
}

impl Network {
    /// Builds the metric complete graph over `sensors ∪ depots`.
    ///
    /// # Panics
    /// Panics when there are no depots (the paper requires `q ≥ 1`) or any
    /// coordinate is non-finite.
    pub fn new(sensors: Vec<Point2>, depots: Vec<Point2>) -> Self {
        assert!(!depots.is_empty(), "at least one depot (mobile charger) is required");
        assert!(
            sensors.iter().chain(depots.iter()).all(|p| p.is_finite()),
            "positions must be finite"
        );
        let all: Vec<Point2> = sensors.iter().chain(depots.iter()).copied().collect();
        let dist = DistMatrix::from_points(&all);
        Self { sensor_pos: sensors, depot_pos: depots, dist }
    }

    /// Number of sensors `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.sensor_pos.len()
    }

    /// Number of depots / mobile chargers `q`.
    #[inline]
    pub fn q(&self) -> usize {
        self.depot_pos.len()
    }

    /// Total node count `n + q`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.n() + self.q()
    }

    /// Node id of sensor `i`.
    #[inline]
    pub fn sensor_node(&self, i: SensorId) -> usize {
        debug_assert!(i < self.n());
        i
    }

    /// Node id of depot `l`.
    #[inline]
    pub fn depot_node(&self, l: usize) -> usize {
        debug_assert!(l < self.q());
        self.n() + l
    }

    /// All depot node ids, in depot order.
    pub fn depot_nodes(&self) -> Vec<usize> {
        (self.n()..self.node_count()).collect()
    }

    /// True when `node` is a depot.
    #[inline]
    pub fn is_depot(&self, node: usize) -> bool {
        node >= self.n() && node < self.node_count()
    }

    /// Position of sensor `i`.
    #[inline]
    pub fn sensor_pos(&self, i: SensorId) -> Point2 {
        self.sensor_pos[i]
    }

    /// All sensor positions.
    #[inline]
    pub fn sensor_positions(&self) -> &[Point2] {
        &self.sensor_pos
    }

    /// Position of depot `l`.
    #[inline]
    pub fn depot_pos(&self, l: usize) -> Point2 {
        self.depot_pos[l]
    }

    /// The distance matrix over all `n + q` nodes.
    #[inline]
    pub fn dist(&self) -> &DistMatrix {
        &self.dist
    }
}

/// A fixed-maximum-charging-cycle problem instance (Section V): the
/// network, a cycle `τ_i > 0` per sensor, and the monitoring period `T`.
#[derive(Debug, Clone)]
pub struct Instance {
    network: Network,
    cycles: Vec<f64>,
    horizon: f64,
}

impl Instance {
    /// # Panics
    /// Panics when `cycles.len() != network.n()`, any cycle is not strictly
    /// positive and finite, or the horizon is not positive.
    pub fn new(network: Network, cycles: Vec<f64>, horizon: f64) -> Self {
        assert_eq!(
            cycles.len(),
            network.n(),
            "one maximum charging cycle per sensor"
        );
        assert!(
            cycles.iter().all(|&t| t > 0.0 && t.is_finite()),
            "cycles must be positive and finite"
        );
        assert!(horizon > 0.0 && horizon.is_finite(), "horizon must be positive");
        Self { network, cycles, horizon }
    }

    /// The underlying network geometry.
    #[inline]
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Maximum charging cycles `τ_i`.
    #[inline]
    pub fn cycles(&self) -> &[f64] {
        &self.cycles
    }

    /// Monitoring period `T`.
    #[inline]
    pub fn horizon(&self) -> f64 {
        self.horizon
    }

    /// Shorthand for `network().n()`.
    #[inline]
    pub fn n(&self) -> usize {
        self.network.n()
    }

    /// Shorthand for `network().q()`.
    #[inline]
    pub fn q(&self) -> usize {
        self.network.q()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Network {
        Network::new(
            vec![Point2::new(1.0, 0.0), Point2::new(0.0, 2.0)],
            vec![Point2::new(0.0, 0.0), Point2::new(5.0, 5.0)],
        )
    }

    #[test]
    fn node_id_convention() {
        let net = tiny();
        assert_eq!(net.n(), 2);
        assert_eq!(net.q(), 2);
        assert_eq!(net.node_count(), 4);
        assert_eq!(net.sensor_node(1), 1);
        assert_eq!(net.depot_node(0), 2);
        assert_eq!(net.depot_nodes(), vec![2, 3]);
        assert!(!net.is_depot(1));
        assert!(net.is_depot(2));
        assert!(!net.is_depot(4));
    }

    #[test]
    fn distances_cover_sensor_depot_pairs() {
        let net = tiny();
        assert_eq!(net.dist().get(0, 2), 1.0); // sensor 0 to depot 0
        assert_eq!(net.dist().get(1, 2), 2.0); // sensor 1 to depot 0
        assert!(net.dist().is_metric(1e-9));
    }

    #[test]
    fn zero_sensor_network_is_allowed() {
        let net = Network::new(vec![], vec![Point2::ORIGIN]);
        assert_eq!(net.n(), 0);
        assert_eq!(net.depot_nodes(), vec![0]);
    }

    #[test]
    #[should_panic(expected = "at least one depot")]
    fn rejects_zero_depots() {
        Network::new(vec![Point2::ORIGIN], vec![]);
    }

    #[test]
    fn instance_validation() {
        let inst = Instance::new(tiny(), vec![1.0, 4.0], 100.0);
        assert_eq!(inst.cycles(), &[1.0, 4.0]);
        assert_eq!(inst.horizon(), 100.0);
        assert_eq!(inst.n(), 2);
        assert_eq!(inst.q(), 2);
    }

    #[test]
    #[should_panic(expected = "one maximum charging cycle per sensor")]
    fn instance_rejects_wrong_cycle_count() {
        Instance::new(tiny(), vec![1.0], 100.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn instance_rejects_nonpositive_cycle() {
        Instance::new(tiny(), vec![1.0, 0.0], 100.0);
    }

    #[test]
    #[should_panic(expected = "horizon")]
    fn instance_rejects_bad_horizon() {
        Instance::new(tiny(), vec![1.0, 1.0], 0.0);
    }
}
