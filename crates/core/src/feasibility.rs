//! Independent feasibility checking.
//!
//! A schedule series is feasible (Section III.C) when, for every sensor,
//! (i) the gap between consecutive charges never exceeds its maximum
//! charging cycle, and (ii) neither do the leading gap from `t = 0` (all
//! sensors start fully charged) nor the trailing gap to the end of the
//! period `T`. This module re-derives charge times from the series and
//! checks both conditions without trusting anything the planners computed —
//! it is the test oracle for every algorithm in the crate.

use crate::network::Instance;
use crate::schedule::ScheduleSeries;

/// A feasibility violation.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// The gap `(from, to]` between two consecutive charges of `sensor`
    /// exceeds its cycle `tau`. `from == 0.0` covers the leading gap.
    GapExceeded {
        /// Offending sensor index.
        sensor: usize,
        /// Start of the gap (previous charge, or 0).
        from: f64,
        /// End of the gap (next charge).
        to: f64,
        /// The sensor's maximum charging cycle.
        tau: f64,
    },
    /// The gap from the last charge of `sensor` to the horizon exceeds
    /// `tau`.
    TailExceeded {
        /// Offending sensor index.
        sensor: usize,
        /// Time of the last charge (or 0 if never charged).
        last: f64,
        /// The monitoring period `T`.
        horizon: f64,
        /// The sensor's maximum charging cycle.
        tau: f64,
    },
}

impl Violation {
    /// The offending sensor.
    pub fn sensor(&self) -> usize {
        match *self {
            Violation::GapExceeded { sensor, .. } | Violation::TailExceeded { sensor, .. } => {
                sensor
            }
        }
    }

    /// Length of the offending charge gap (tail violations measure to the
    /// horizon).
    pub fn gap(&self) -> f64 {
        match *self {
            Violation::GapExceeded { from, to, .. } => to - from,
            Violation::TailExceeded { last, horizon, .. } => horizon - last,
        }
    }

    /// By how much the gap overshoots the sensor's cycle `τ_i` — the
    /// "how far from feasible" magnitude (always positive for a reported
    /// violation).
    pub fn excess(&self) -> f64 {
        match *self {
            Violation::GapExceeded { tau, .. } | Violation::TailExceeded { tau, .. } => {
                self.gap() - tau
            }
        }
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::GapExceeded { sensor, from, to, tau } => write!(
                f,
                "sensor {sensor}: charge gap {from}..{to} ({} units) exceeds cycle {tau} by {}",
                to - from,
                self.excess()
            ),
            Violation::TailExceeded { sensor, last, horizon, tau } => write!(
                f,
                "sensor {sensor}: last charged at {last}, horizon {horizon} ({} units) exceeds cycle {tau} by {}",
                horizon - last,
                self.excess()
            ),
        }
    }
}

/// Numerical slack on gap comparisons: dispatch times are sums of `f64`
/// multiples of `τ_1`, so exact-`τ` gaps may overshoot by rounding noise.
const EPS: f64 = 1e-9;

/// Checks a series against the instance's cycles and horizon. Returns all
/// violations (empty `Ok` means every sensor survives the whole period).
///
/// Runs as a single inverted pass: one sweep over the dispatches builds
/// every sensor's charge times at once
/// ([`ScheduleSeries::charge_times_all`]), so the whole check costs
/// `O(D log D + total charges)` instead of the `O(n · D)` per-sensor
/// membership scans it used to perform.
pub fn check_series(instance: &Instance, series: &ScheduleSeries) -> Result<(), Vec<Violation>> {
    let cycles = instance.cycles();
    let horizon = instance.horizon();
    let all = series.charge_times_all(cycles.len());
    let mut violations = Vec::new();
    for (i, &tau) in cycles.iter().enumerate() {
        check_sensor(i, tau, &all[i], horizon, &mut violations);
    }
    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations)
    }
}

/// Core checker over explicit charge times; `charges(i)` must return the
/// ascending charge times of sensor `i`. Exposed so the simulator can check
/// *executed* charges (ground truth) as well as planned ones.
pub fn check_with(
    cycles: &[f64],
    horizon: f64,
    charges: impl Fn(usize) -> Vec<f64>,
) -> Result<(), Vec<Violation>> {
    let mut violations = Vec::new();
    for (i, &tau) in cycles.iter().enumerate() {
        check_sensor(i, tau, &charges(i), horizon, &mut violations);
    }
    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations)
    }
}

/// Gap/tail check for one sensor given its ascending charge times.
fn check_sensor(sensor: usize, tau: f64, times: &[f64], horizon: f64, out: &mut Vec<Violation>) {
    let mut prev = 0.0; // fully charged at t = 0
    for &t in times {
        if t - prev > tau + EPS {
            out.push(Violation::GapExceeded { sensor, from: prev, to: t, tau });
        }
        prev = t;
    }
    if horizon - prev > tau + EPS {
        out.push(Violation::TailExceeded { sensor, last: prev, horizon, tau });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_good() {
        let r = check_with(&[2.0, 5.0], 10.0, |i| match i {
            0 => vec![2.0, 4.0, 6.0, 8.0],
            _ => vec![5.0],
        });
        assert!(r.is_ok());
    }

    #[test]
    fn detects_mid_gap() {
        let r = check_with(&[2.0], 10.0, |_| vec![2.0, 6.0, 8.0]);
        let v = r.unwrap_err();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0], Violation::GapExceeded { sensor: 0, from: 2.0, to: 6.0, tau: 2.0 });
    }

    #[test]
    fn detects_leading_gap() {
        let r = check_with(&[3.0], 10.0, |_| vec![4.0, 7.0, 10.0]);
        let v = r.unwrap_err();
        assert!(matches!(v[0], Violation::GapExceeded { from, .. } if from == 0.0));
    }

    #[test]
    fn detects_tail_gap() {
        let r = check_with(&[3.0], 10.0, |_| vec![3.0, 6.0]);
        let v = r.unwrap_err();
        assert_eq!(v[0], Violation::TailExceeded { sensor: 0, last: 6.0, horizon: 10.0, tau: 3.0 });
    }

    #[test]
    fn never_charged_but_long_cycle_ok() {
        assert!(check_with(&[10.0], 10.0, |_| vec![]).is_ok());
        assert!(check_with(&[9.0], 10.0, |_| vec![]).is_err());
    }

    #[test]
    fn exact_gap_equal_to_tau_allowed() {
        // |t2 - t1| ≤ τ is the paper's constraint — equality is fine.
        assert!(check_with(&[2.0], 8.0, |_| vec![2.0, 4.0, 6.0, 8.0 - 2.0]).is_ok());
    }

    #[test]
    fn reports_all_violations() {
        let r = check_with(&[1.0, 1.0], 3.0, |_| vec![]);
        let v = r.unwrap_err();
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn display_is_informative() {
        let g = Violation::GapExceeded { sensor: 3, from: 1.0, to: 5.0, tau: 2.0 };
        let s = format!("{g}");
        assert!(s.contains("sensor 3") && s.contains("exceeds cycle 2") && s.contains("by 2"));
    }

    #[test]
    fn accessors_quantify_the_violation() {
        let g = Violation::GapExceeded { sensor: 3, from: 1.0, to: 5.0, tau: 2.0 };
        assert_eq!(g.sensor(), 3);
        assert_eq!(g.gap(), 4.0);
        assert_eq!(g.excess(), 2.0);

        let t = Violation::TailExceeded { sensor: 7, last: 6.0, horizon: 10.0, tau: 2.5 };
        assert_eq!(t.sensor(), 7);
        assert_eq!(t.gap(), 4.0);
        assert_eq!(t.excess(), 1.5);
        let s = format!("{t}");
        assert!(s.contains("sensor 7") && s.contains("by 1.5"));
    }
}
