//! Range-constrained tour splitting (extension).
//!
//! The paper assumes "each mobile charger has enough energy to replenish
//! all sensors ... in each charging tour" (Section III.A); its reference
//! \[7\] (Liang et al., LCN 2014) drops that assumption and bounds each
//! vehicle trip. This module retrofits that constraint onto any tour the
//! schedulers produce: a closed tour longer than the charger's range `L`
//! is split into several depot-anchored trips, each of length `≤ L`.
//!
//! Splitting uses the *route-first, cluster-second* principle with
//! Beasley's optimal split: given the visiting order, a shortest-path DP
//! over prefixes finds the partition into feasible trips of minimum total
//! length (`O(m²)`), which dominates the naive greedy cut.

use crate::schedule::TourSet;
use perpetuum_graph::{DistMatrix, Tour};

/// Why a tour cannot be split within range `L`.
#[derive(Debug, Clone, PartialEq)]
pub enum SplitError {
    /// Some sensor cannot be served even by a dedicated out-and-back trip:
    /// `2·d(depot, sensor) > L`.
    SensorOutOfRange {
        /// The unreachable sensor (node id).
        sensor: usize,
        /// Its minimal round-trip length from the tour's depot.
        round_trip: f64,
        /// The charger range.
        max_len: f64,
    },
    /// The tour has no depot (empty).
    EmptyTour,
}

impl std::fmt::Display for SplitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SplitError::SensorOutOfRange { sensor, round_trip, max_len } => write!(
                f,
                "sensor {sensor}: round trip {round_trip} exceeds charger range {max_len}"
            ),
            SplitError::EmptyTour => write!(f, "cannot split an empty tour"),
        }
    }
}

/// Splits `tour` (depot-first closed tour) into trips of length `≤ max_len`
/// preserving the visiting order, minimising total length via Beasley's
/// split DP. A tour already within range is returned unchanged (one trip).
///
/// ```
/// use perpetuum_core::split::split_tour;
/// use perpetuum_geom::Point2;
/// use perpetuum_graph::{DistMatrix, Tour};
///
/// // Depot at the origin, two customers east and two west.
/// let dist = DistMatrix::from_points(&[
///     Point2::new(0.0, 0.0),
///     Point2::new(10.0, 0.0), Point2::new(20.0, 0.0),
///     Point2::new(-10.0, 0.0), Point2::new(-20.0, 0.0),
/// ]);
/// let tour = Tour::new(vec![0, 1, 2, 3, 4]); // 80 m closed
/// let trips = split_tour(&dist, &tour, 45.0).unwrap();
/// assert_eq!(trips.len(), 2); // one trip per side, each 40 m
/// ```
pub fn split_tour(dist: &DistMatrix, tour: &Tour, max_len: f64) -> Result<Vec<Tour>, SplitError> {
    assert!(max_len > 0.0, "range must be positive");
    let nodes = tour.nodes();
    let Some(&depot) = nodes.first() else {
        return Err(SplitError::EmptyTour);
    };
    let customers = &nodes[1..];
    let m = customers.len();
    if m == 0 {
        return Ok(vec![Tour::singleton(depot)]);
    }
    if tour.length(dist) <= max_len {
        return Ok(vec![tour.clone()]);
    }

    // Feasibility of every customer on its own.
    for &v in customers {
        let rt = 2.0 * dist.get(depot, v);
        if rt > max_len + 1e-9 {
            return Err(SplitError::SensorOutOfRange { sensor: v, round_trip: rt, max_len });
        }
    }

    // trip_len(i, j): depot → customers[i..=j] → depot, computed
    // incrementally inside the DP loops.
    // dp[j]: minimal total length covering customers[0..j]; pred[j]: the
    // split point achieving it.
    let mut dp = vec![f64::INFINITY; m + 1];
    let mut pred = vec![usize::MAX; m + 1];
    dp[0] = 0.0;
    for i in 0..m {
        if !dp[i].is_finite() {
            continue;
        }
        // Extend a trip starting at customers[i].
        let mut inner = 0.0; // path length customers[i] → … → customers[j]
        for j in i..m {
            if j > i {
                inner += dist.get(customers[j - 1], customers[j]);
            }
            let trip = dist.get(depot, customers[i]) + inner + dist.get(customers[j], depot);
            if trip > max_len + 1e-9 {
                break; // longer trips from i only grow (triangle inequality)
            }
            let cand = dp[i] + trip;
            if cand < dp[j + 1] {
                dp[j + 1] = cand;
                pred[j + 1] = i;
            }
        }
    }
    debug_assert!(dp[m].is_finite(), "single-customer trips are always feasible");

    // Reconstruct trips.
    let mut cuts = Vec::new();
    let mut j = m;
    while j > 0 {
        let i = pred[j];
        cuts.push((i, j));
        j = i;
    }
    cuts.reverse();
    Ok(cuts
        .into_iter()
        .map(|(i, j)| {
            let mut trip = Vec::with_capacity(j - i + 1);
            trip.push(depot);
            trip.extend_from_slice(&customers[i..j]);
            Tour::new(trip)
        })
        .collect())
}

/// Per-charger trips after range-splitting a whole tour set.
#[derive(Debug, Clone)]
pub struct SplitTourSet {
    /// `trips[l]` — the trips charger `l` drives (1 when already in range).
    pub trips: Vec<Vec<Tour>>,
    /// Total distance over all trips.
    pub total: f64,
}

/// Splits every tour of a [`TourSet`] to respect the charger range.
pub fn split_tour_set(
    dist: &DistMatrix,
    set: &TourSet,
    max_len: f64,
) -> Result<SplitTourSet, SplitError> {
    let mut trips = Vec::with_capacity(set.tours().len());
    let mut total = 0.0;
    for tour in set.tours() {
        let split = split_tour(dist, tour, max_len)?;
        total += split.iter().map(|t| t.length(dist)).sum::<f64>();
        trips.push(split);
    }
    Ok(SplitTourSet { trips, total })
}

#[cfg(test)]
mod tests {
    use super::*;
    use perpetuum_geom::Point2;
    use rand::{Rng, SeedableRng};

    fn line_dist(n: usize, spacing: f64) -> DistMatrix {
        // depot at 0, customers at spacing, 2·spacing, …
        let pts: Vec<Point2> = (0..=n).map(|i| Point2::new(i as f64 * spacing, 0.0)).collect();
        DistMatrix::from_points(&pts)
    }

    #[test]
    fn tour_within_range_untouched() {
        let d = line_dist(3, 1.0);
        let tour = Tour::new(vec![0, 1, 2, 3]);
        let trips = split_tour(&d, &tour, 100.0).unwrap();
        assert_eq!(trips.len(), 1);
        assert_eq!(trips[0].nodes(), tour.nodes());
    }

    /// Depot at the origin, two customers east, two west: the full tour is
    /// 80 long but the worst round trip is only 40, so a 45-range charger
    /// must split into one trip per side.
    fn two_sided() -> (DistMatrix, Tour) {
        let pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(10.0, 0.0),
            Point2::new(20.0, 0.0),
            Point2::new(-10.0, 0.0),
            Point2::new(-20.0, 0.0),
        ];
        (DistMatrix::from_points(&pts), Tour::new(vec![0, 1, 2, 3, 4]))
    }

    #[test]
    fn oversize_tour_is_split_within_range() {
        let (d, tour) = two_sided();
        assert_eq!(tour.length(&d), 80.0);
        let trips = split_tour(&d, &tour, 45.0).unwrap();
        assert_eq!(trips.len(), 2);
        for t in &trips {
            assert!(t.length(&d) <= 45.0 + 1e-9);
            assert_eq!(t.start(), Some(0));
        }
        // Coverage preserved, order preserved.
        let covered: Vec<usize> =
            trips.iter().flat_map(|t| t.nodes()[1..].iter().copied()).collect();
        assert_eq!(covered, vec![1, 2, 3, 4]);
    }

    #[test]
    fn unreachable_sensor_reported() {
        let d = line_dist(2, 30.0); // customer 2 at 60 → round trip 120
        let tour = Tour::new(vec![0, 1, 2]);
        let err = split_tour(&d, &tour, 100.0).unwrap_err();
        assert_eq!(
            err,
            SplitError::SensorOutOfRange { sensor: 2, round_trip: 120.0, max_len: 100.0 }
        );
        assert!(format!("{err}").contains("exceeds charger range"));
    }

    #[test]
    fn dp_split_no_worse_than_greedy_cut() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..10 {
            let pts: Vec<Point2> =
                std::iter::once(Point2::new(500.0, 500.0))
                    .chain((0..12).map(|_| {
                        Point2::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0))
                    }))
                    .collect();
            let d = DistMatrix::from_points(&pts);
            let tour = Tour::new((0..13).collect());
            let max_len = tour.length(&d) / 2.5;
            // Some sensors may be out of range for this budget — skip.
            let Ok(trips) = split_tour(&d, &tour, max_len) else { continue };

            // Greedy cut in the same order.
            let mut greedy_total = 0.0;
            let nodes = tour.nodes();
            let mut i = 1;
            while i < nodes.len() {
                let mut j = i;
                let mut inner = 0.0;
                loop {
                    let next = j + 1;
                    if next >= nodes.len() {
                        break;
                    }
                    let grow = inner + d.get(nodes[j], nodes[next]);
                    let trip = d.get(nodes[0], nodes[i]) + grow + d.get(nodes[next], nodes[0]);
                    if trip > max_len + 1e-9 {
                        break;
                    }
                    inner = grow;
                    j = next;
                }
                greedy_total += d.get(nodes[0], nodes[i]) + inner + d.get(nodes[j], nodes[0]);
                i = j + 1;
            }
            let dp_total: f64 = trips.iter().map(|t| t.length(&d)).sum();
            assert!(dp_total <= greedy_total + 1e-6, "{dp_total} vs {greedy_total}");
        }
    }

    #[test]
    fn split_tour_set_aggregates() {
        let (d, tour) = two_sided();
        let set = TourSet::new(vec![tour], &d, |v| v == 0);
        let split = split_tour_set(&d, &set, 45.0).unwrap();
        assert_eq!(split.trips.len(), 1);
        assert!(split.trips[0].len() >= 2);
        assert!(split.total >= set.cost() - 1e-9, "splitting can't shorten");
    }

    #[test]
    fn empty_and_singleton_tours() {
        let d = line_dist(2, 1.0);
        assert_eq!(split_tour(&d, &Tour::new(vec![]), 10.0).unwrap_err(), SplitError::EmptyTour);
        let trips = split_tour(&d, &Tour::singleton(0), 10.0).unwrap();
        assert_eq!(trips.len(), 1);
        assert_eq!(trips[0].len(), 1);
    }

    #[test]
    fn tight_range_forces_one_trip_per_sensor() {
        let d = line_dist(3, 10.0);
        let tour = Tour::new(vec![0, 1, 2, 3]);
        // Range just enough for the farthest round trip (60).
        let trips = split_tour(&d, &tour, 60.0).unwrap();
        for t in &trips {
            assert!(t.length(&d) <= 60.0 + 1e-9);
        }
        let covered: Vec<usize> =
            trips.iter().flat_map(|t| t.nodes()[1..].iter().copied()).collect();
        assert_eq!(covered, vec![1, 2, 3]);
    }
}
