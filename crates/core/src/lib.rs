//! The charging-scheduling algorithms of
//! *"Towards Perpetual Sensor Networks via Deploying Multiple Mobile
//! Wireless Chargers"* (Xu, Liang, Lin, Mao, Ren — ICPP 2014).
//!
//! The crate is organised around the paper's structure:
//!
//! | Paper | Module |
//! |---|---|
//! | network model (Section III) | [`network`] |
//! | Algorithm 1 — `q`-rooted minimum spanning forest | [`qmsf`] |
//! | Algorithm 2 — 2-approximate `q`-rooted TSP | [`qtsp`] |
//! | power-of-two cycle rounding (Section V.A) | [`rounding`] |
//! | charging schedulings & service cost (Section III.B) | [`schedule`] |
//! | Algorithm 3 — `MinTotalDistance` (Section V.B) | [`mtd`] |
//! | `MinTotalDistance-var` replanning (Section VI.B) | [`var`] |
//! | incremental replanning (forest splicing, warm tours) | [`incremental`] |
//! | greedy baseline (Section VII.A) | [`greedy`] |
//! | independent feasibility checking | [`feasibility`] |
//! | degraded-mode recovery on surviving depots | [`recovery`] |
//!
//! # Quick start
//!
//! ```
//! use perpetuum_core::network::{Instance, Network};
//! use perpetuum_core::mtd::{plan_min_total_distance, MtdConfig};
//! use perpetuum_geom::Point2;
//!
//! // Four sensors around a single depot at the origin.
//! let sensors = vec![
//!     Point2::new(10.0, 0.0),
//!     Point2::new(0.0, 10.0),
//!     Point2::new(-10.0, 0.0),
//!     Point2::new(0.0, -10.0),
//! ];
//! let depots = vec![Point2::new(0.0, 0.0)];
//! let network = Network::new(sensors, depots);
//! // Maximum charging cycles: two urgent sensors, two relaxed ones.
//! let instance = Instance::new(network, vec![1.0, 1.0, 4.0, 4.0], 16.0);
//! let series = plan_min_total_distance(&instance, &MtdConfig::default());
//! assert!(series.service_cost() > 0.0);
//! // The plan keeps every sensor alive for the whole horizon.
//! perpetuum_core::feasibility::check_series(&instance, &series).unwrap();
//! ```

pub mod bounds;
pub mod feasibility;
pub mod greedy;
pub mod incremental;
pub mod minmax;
pub mod mtd;
pub mod naive;
pub mod network;
pub mod qmsf;
pub mod qtsp;
pub mod recovery;
pub mod refine;
pub mod rounding;
pub mod schedule;
pub mod split;
pub mod stats;
pub mod var;

pub use bounds::{lemma3_lower_bound, ServiceCostBound};
pub use feasibility::check_series;
pub use greedy::{plan_greedy_fixed, GreedyConfig};
pub use incremental::{FullReason, IncrementalConfig, IncrementalPlanner, ReplanOutcome};
pub use minmax::{min_max_cover, MinMaxCover};
pub use mtd::{plan_min_total_distance, MtdConfig};
pub use naive::{plan_charge_all, plan_per_sensor_cadence};
pub use network::{Instance, Network};
pub use qmsf::{
    q_rooted_msf, q_rooted_msf_sparse, q_rooted_msf_src, rooted_msf_general, RootedForest,
};
pub use qtsp::{
    q_rooted_tsp, q_rooted_tsp_routed, q_rooted_tsp_routed_src, q_rooted_tsp_src,
    q_rooted_tsp_with_forest_src, tour_from_tree_doubling, tours_for_forest_src, QTours, Routing,
};
pub use recovery::{degraded_tour_set, surviving_depots};
pub use refine::{refine, refine_tour_set, Budget, RefineReport};
pub use rounding::{partition_cycles, power_class, CyclePartition};
pub use schedule::{Dispatch, ScheduleSeries, TourSet};
pub use split::{split_tour, split_tour_set, SplitError, SplitTourSet};
pub use stats::{analyze, SeriesStats};
pub use var::{
    replan_variable, replan_variable_detailed, replan_variable_with, RepairStrategy, VarDetailed,
    VarInput,
};
