//! Incremental replanning: persistent Algorithm-1/2 state that survives
//! across adaptive replans.
//!
//! `MinTotalDistance-var` ([`crate::var`], Section VI.B) rebuilds the
//! `q`-rooted MSF and every tour from scratch each time cycles drift out
//! of band. Profiling shows that work is almost entirely redundant:
//! between consecutive replans only a handful of sensors change
//! power-of-two class, yet the from-scratch path re-runs heap-Prim and
//! re-routes every cumulative base set `D_0 ⊆ … ⊆ D_K` plus the whole
//! `V^a` repair. This module keeps the forest and tours of every base set
//! alive between replans and *splices* them:
//!
//! * **Forest surgery** — a class migration inserts/removes sensors from
//!   the affected `D_k`. The set's forest is recomputed by heap-Prim over
//!   a sparse candidate pool — surviving tree edges ∪ cached per-member
//!   in-set k-NN lists ∪ refreshed lists for *dirty* members ∪ one
//!   best-depot super-root edge per member — and un-contracted by the same
//!   `crate::qmsf::uncontract` the from-scratch paths use. A member is
//!   dirty when its cached list references a departed sensor, or an
//!   arriving sensor would rank within its cached `k` nearest; after the
//!   refresh every cached list equals the fresh k-NN list, so the pool
//!   covers the k-NN graph and the splice matches
//!   [`crate::qmsf::rooted_msf_points`] exactly (same k-NN-coverage
//!   exactness caveat as the sparse MSF itself).
//! * **Warm-started tours** — each root's previous tour is repaired in
//!   place: departed nodes are dropped (triangle inequality — never
//!   longer), arrivals are cheapest-inserted, and a localized 2-opt
//!   smooths the seams. A fresh doubling rebuild of the spliced tree
//!   guards every root: the shorter tour wins, so a warm tour never costs
//!   more than the paper's 2-approximation on the current forest. Repairs
//!   run per-root in parallel and are bit-identical for any worker count
//!   (same argument as [`crate::qtsp::q_rooted_tsp_routed_src`]).
//! * **Anchor-grid emission** — dispatch times stay on the seed grid
//!   `anchor + j·τ̂₁` serving `D_{min(ν₂(j),K)}`, so future dispatches of
//!   an untouched class reuse its cached tours verbatim. A replan at `now`
//!   re-emits the future grid plus one immediate batch for sensors whose
//!   residual cannot reach their next grid service — the incremental
//!   counterpart of the `V^a` repair.
//!
//! A splice refuses (and the caller re-seeds from scratch) when the cached
//! partition no longer applies — see [`FullReason`].

#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use crate::mtd::nu2;
use crate::network::Network;
use crate::qmsf::{uncontract, ForestEdge, RootedForest, SPARSE_MSF_K};
use crate::qtsp::{default_tour_workers, q_rooted_tsp_src, tour_from_tree_doubling, QTours};
use crate::rounding::power_class;
use crate::schedule::{ScheduleSeries, TourSet};
use crate::var::{replan_variable_detailed, RepairStrategy, VarDetailed, VarInput, VarPlan};
use perpetuum_geom::{knn_lists, KdTree, Point2, SpatialIndex};
use perpetuum_graph::{prim_sparse, Metric, SparseGraph, Tour};

/// Tuning knobs of the incremental planner.
#[derive(Debug, Clone, Copy)]
pub struct IncrementalConfig {
    /// Neighbours per cached k-NN list (candidate edges per member during
    /// forest surgery). Matches [`SPARSE_MSF_K`] so splices reproduce the
    /// from-scratch sparse MSF.
    pub knn: usize,
    /// When more than this fraction of the sensors migrate class in one
    /// replan, surgery would touch most of the forest anyway — fall back
    /// to a full replan instead.
    pub migration_fallback_fraction: f64,
    /// Half-width (in tour positions) of the localized 2-opt window around
    /// each repaired seam.
    pub repair_window: usize,
    /// Worker override for the parallel per-root tour repair; `None` uses
    /// the same heuristic as the from-scratch tour build. The parity tests
    /// pin explicit counts against each other.
    pub tour_workers: Option<usize>,
}

impl Default for IncrementalConfig {
    fn default() -> Self {
        Self {
            knn: SPARSE_MSF_K,
            migration_fallback_fraction: 0.25,
            repair_window: 8,
            tour_workers: None,
        }
    }
}

/// Why an incremental replan refused and a full re-seed is required.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FullReason {
    /// Some cycle dropped below the cached base interval `τ̂₁` — the
    /// anchor grid cannot serve it often enough.
    Tau1Undercut,
    /// Some cycle grew beyond class `K` of the cached partition — serving
    /// it on the cached grid would waste tours, and the class set itself
    /// must be re-derived.
    ClassOverflow,
    /// More sensors migrated than
    /// [`IncrementalConfig::migration_fallback_fraction`] allows.
    TooManyMigrations,
}

/// Result of [`IncrementalPlanner::replan`].
#[derive(Debug)]
pub enum ReplanOutcome {
    /// The spliced plan; state has been updated in place.
    Incremental(VarPlan),
    /// The cached partition no longer applies — run a full replan and
    /// re-seed the planner. State is unchanged.
    NeedsFull(FullReason),
}

/// One cumulative base set `D_k` with its live forest, tours, and k-NN
/// cache, all in *sensor-id* space (edges store sensor ids, `root_edges`
/// store `(depot index, sensor id)`).
#[derive(Debug, Clone)]
struct DynamicSet {
    /// Current members, ascending sensor ids.
    members: Vec<usize>,
    /// Membership bitmap, length `n`.
    in_set: Vec<bool>,
    /// Terminal-terminal forest edges.
    term_edges: Vec<(usize, usize)>,
    /// Root attachment edges `(depot index, sensor id)`.
    root_edges: Vec<(usize, usize)>,
    /// `assignment[s]` — depot index of member `s` (stale for non-members).
    assignment: Vec<usize>,
    /// Total forest weight.
    weight: f64,
    /// Current per-depot tours over the members.
    tours: TourSet,
    /// `lists[s]` — cached in-set k-NN of member `s`, nearest first.
    /// Built lazily on the first splice, so sets that never migrate
    /// (notably `D_K` = all sensors) never pay for it.
    lists: Option<Vec<Vec<usize>>>,
}

impl DynamicSet {
    /// Wraps a from-scratch build ([`crate::var::VarDetailed`]) without
    /// recomputing anything.
    fn from_build(
        network: &Network,
        members: Vec<usize>,
        forest: &RootedForest,
        qt: QTours,
    ) -> Self {
        let n = network.n();
        let mut in_set = vec![false; n];
        for &s in &members {
            in_set[s] = true;
        }
        let mut assignment = vec![0usize; n];
        let mut term_edges = Vec::new();
        let mut root_edges = Vec::new();
        for (t, &r) in forest.assignment.iter().enumerate() {
            assignment[members[t]] = r;
        }
        for tree in &forest.trees {
            for e in tree {
                match *e {
                    ForestEdge::TermTerm(a, b) => term_edges.push((members[a], members[b])),
                    ForestEdge::RootTerm(r, t) => root_edges.push((r, members[t])),
                }
            }
        }
        let tours = TourSet::from_qtours(qt, |v| v >= n);
        Self {
            members,
            in_set,
            term_edges,
            root_edges,
            assignment,
            weight: forest.weight,
            tours,
            lists: None,
        }
    }

    /// Splices `removed` out of and `inserted` into the set: forest
    /// surgery plus warm-started tour repair. `best_depot[s]` is the
    /// precomputed `(distance, depot index)` super-root edge of sensor `s`.
    fn splice(
        &mut self,
        network: &Network,
        removed: &[usize],
        inserted: &[usize],
        best_depot: &[(f64, usize)],
        cfg: &IncrementalConfig,
    ) {
        let n = network.n();
        let q = network.q();
        let src = network.dist_source();
        let old_assignment = self.assignment.clone();

        // --- membership -----------------------------------------------------
        for &s in removed {
            debug_assert!(self.in_set[s], "removing a non-member");
            self.in_set[s] = false;
        }
        let mut members: Vec<usize> =
            self.members.iter().copied().filter(|&s| self.in_set[s]).collect();
        for &s in inserted {
            debug_assert!(!self.in_set[s], "inserting an existing member");
            self.in_set[s] = true;
        }
        members.extend_from_slice(inserted);
        members.sort_unstable();
        let m = members.len();

        if let Some(lists) = &mut self.lists {
            for &s in removed {
                lists[s].clear();
            }
        }
        if m == 0 {
            self.members = members;
            self.term_edges.clear();
            self.root_edges.clear();
            self.weight = 0.0;
            let tours: Vec<Tour> = (0..q).map(|l| Tour::singleton(network.depot_node(l))).collect();
            self.tours = TourSet::new(tours, &src, |v| v >= n);
            return;
        }

        // --- k-NN cache maintenance -----------------------------------------
        let positions: Vec<Point2> = members.iter().map(|&s| network.sensor_pos(s)).collect();
        let k = cfg.knn.min(m - 1);
        let tree = KdTree::new(&positions);
        let mut local_of: Vec<u32> = vec![u32::MAX; n];
        for (idx, &s) in members.iter().enumerate() {
            local_of[s] = idx as u32;
        }
        match &mut self.lists {
            None => {
                let local_lists = knn_lists(&tree, k);
                let mut lists = vec![Vec::new(); n];
                for (idx, ll) in local_lists.into_iter().enumerate() {
                    lists[members[idx]] = ll.into_iter().map(|j| members[j]).collect();
                }
                self.lists = Some(lists);
            }
            Some(lists) => {
                // Dirty: arriving members (no list), members referencing a
                // departed sensor, and members an arrival would displace —
                // i.e. dist(s, arrival) beats s's cached k-th neighbour.
                // After refreshing those, every cached list equals the
                // fresh k-NN list, so the candidate pool covers the k-NN
                // graph of the new membership.
                let mut dirty: Vec<usize> = inserted.to_vec();
                for &s in &members {
                    if local_of[s] == u32::MAX {
                        continue;
                    }
                    let list = &lists[s];
                    let stale = list.len() < k
                        || list.iter().any(|&x| local_of[x] == u32::MAX)
                        || list.last().is_some_and(|&last| {
                            let sp = network.sensor_pos(s);
                            let kth = sp.dist(network.sensor_pos(last));
                            inserted.iter().any(|&i| sp.dist(network.sensor_pos(i)) < kth)
                        });
                    if stale {
                        dirty.push(s);
                    }
                }
                dirty.sort_unstable();
                dirty.dedup();
                for &s in &dirty {
                    let idx = local_of[s] as usize;
                    lists[s] = tree
                        .knn(positions[idx], k + 1)
                        .into_iter()
                        .filter(|&(j, _)| j != idx)
                        .take(k)
                        .map(|(j, _)| members[j])
                        .collect();
                }
            }
        }

        // --- forest surgery --------------------------------------------------
        // Candidate pool in local index space: cached k-NN edges of every
        // member + surviving tree edges, deduped, then one best-depot
        // super-root edge (node `m`) per member. heap-Prim from the
        // super-root + `uncontract` mirror `rooted_msf_points` exactly.
        let lists = self.lists.as_ref().expect("k-NN cache built above");
        let mut edges: Vec<(usize, usize, f64)> = Vec::with_capacity(m * (k + 1));
        let push_edge = |edges: &mut Vec<(usize, usize, f64)>, a: usize, b: usize| {
            let (u, v) = if a < b { (a, b) } else { (b, a) };
            edges.push((u, v, positions[u].dist(positions[v])));
        };
        for &s in &members {
            let a = local_of[s] as usize;
            for &x in &lists[s] {
                let b = local_of[x];
                if b != u32::MAX {
                    push_edge(&mut edges, a, b as usize);
                }
            }
        }
        for &(sa, sb) in &self.term_edges {
            let (a, b) = (local_of[sa], local_of[sb]);
            if a != u32::MAX && b != u32::MAX {
                push_edge(&mut edges, a as usize, b as usize);
            }
        }
        edges.sort_unstable_by_key(|e| (e.0, e.1));
        edges.dedup_by_key(|e| (e.0, e.1));
        let mut best_root = vec![0usize; m];
        let mut best_cost = vec![0.0f64; m];
        for (idx, &s) in members.iter().enumerate() {
            let (c, r) = best_depot[s];
            best_cost[idx] = c;
            best_root[idx] = r;
            edges.push((idx, m, c));
        }
        let graph = SparseGraph::from_edges(m + 1, &edges);
        let (mst, _) = prim_sparse(&graph, m).expect("super-root edges connect every member");
        let forest =
            uncontract(m, q, &mst, &best_root, &best_cost, |a, b| positions[a].dist(positions[b]));

        // --- warm-started tours ----------------------------------------------
        // Per-root membership deltas: arrivals, departures, and members the
        // surgery reassigned to a different depot.
        let mut remove_nodes: Vec<Vec<usize>> = vec![Vec::new(); q];
        let mut insert_nodes: Vec<Vec<usize>> = vec![Vec::new(); q];
        for &s in removed {
            remove_nodes[old_assignment[s]].push(network.sensor_node(s));
        }
        for (t, &r_new) in forest.assignment.iter().enumerate() {
            let s = members[t];
            if inserted.binary_search(&s).is_ok() {
                insert_nodes[r_new].push(network.sensor_node(s));
            } else if old_assignment[s] != r_new {
                remove_nodes[old_assignment[s]].push(network.sensor_node(s));
                insert_nodes[r_new].push(network.sensor_node(s));
            }
        }
        let tree_edges: Vec<Vec<(usize, usize)>> = forest
            .trees
            .iter()
            .enumerate()
            .map(|(r, tree)| {
                tree.iter()
                    .map(|e| match *e {
                        ForestEdge::TermTerm(a, b) => {
                            (network.sensor_node(members[a]), network.sensor_node(members[b]))
                        }
                        ForestEdge::RootTerm(_, t) => {
                            (network.depot_node(r), network.sensor_node(members[t]))
                        }
                    })
                    .collect()
            })
            .collect();

        let old_tours = self.tours.tours();
        let workers = cfg.tour_workers.unwrap_or_else(|| default_tour_workers(m, q));
        let build = |r: usize| -> Tour {
            let depot = network.depot_node(r);
            if tree_edges[r].is_empty() {
                return Tour::singleton(depot);
            }
            let rebuilt = tour_from_tree_doubling(&tree_edges[r], depot);
            let warm = if remove_nodes[r].is_empty() && insert_nodes[r].is_empty() {
                old_tours[r].clone()
            } else {
                repair_tour(
                    old_tours[r].nodes(),
                    depot,
                    &remove_nodes[r],
                    &insert_nodes[r],
                    &src,
                    cfg.repair_window,
                )
            };
            // The doubling rebuild of the spliced tree guards the warm
            // repair, so the kept tour is never worse than the paper's
            // 2-approximation on the current forest.
            if warm.length(&src) <= rebuilt.length(&src) + 1e-12 {
                warm
            } else {
                rebuilt
            }
        };
        let tours = perpetuum_par::par_map_indexed(q, workers, build);
        self.tours = TourSet::new(tours, &src, |v| v >= n);

        // --- commit -----------------------------------------------------------
        self.term_edges.clear();
        self.root_edges.clear();
        for (t, &r) in forest.assignment.iter().enumerate() {
            self.assignment[members[t]] = r;
        }
        for tree in &forest.trees {
            for e in tree {
                match *e {
                    ForestEdge::TermTerm(a, b) => self.term_edges.push((members[a], members[b])),
                    ForestEdge::RootTerm(r, t) => self.root_edges.push((r, members[t])),
                }
            }
        }
        self.weight = forest.weight;
        self.members = members;
    }
}

/// Drops `remove`d nodes from a previous tour, cheapest-inserts the
/// arrivals, and runs a localized 2-opt of half-width `window` around the
/// touched positions. The depot stays at position 0.
fn repair_tour<M: Metric>(
    old_nodes: &[usize],
    depot: usize,
    remove: &[usize],
    insert: &[usize],
    dist: &M,
    window: usize,
) -> Tour {
    let mut rm = remove.to_vec();
    rm.sort_unstable();
    let mut nodes: Vec<usize> = Vec::with_capacity(old_nodes.len() + insert.len());
    let mut touched: Vec<usize> = Vec::new();
    for &v in old_nodes {
        if v == depot || rm.binary_search(&v).is_err() {
            nodes.push(v);
        } else {
            // A removal leaves a seam worth smoothing.
            touched.push(nodes.len().saturating_sub(1));
        }
    }
    if nodes.is_empty() {
        nodes.push(depot);
    }
    // Arrivals in ascending id order keep the repair deterministic.
    let mut ins = insert.to_vec();
    ins.sort_unstable();
    for &v in &ins {
        let len = nodes.len();
        let mut best_pos = len;
        let mut best_delta = f64::INFINITY;
        for p in 1..=len {
            let prev = nodes[p - 1];
            let next = nodes[p % len];
            let delta = dist.get(prev, v) + dist.get(v, next) - dist.get(prev, next);
            if delta < best_delta - 1e-12 {
                best_delta = delta;
                best_pos = p;
            }
        }
        nodes.insert(best_pos, v);
        touched.push(best_pos);
    }
    local_two_opt(&mut nodes, dist, &touched, window);
    Tour::new(nodes)
}

/// One localized 2-opt pass: only edges whose first endpoint lies within
/// `window` positions of a touched index are considered, paired with the
/// following `2·window` edges. First-improvement, single pass — the caller
/// guards quality with a fresh rebuild, this only smooths seams.
fn local_two_opt<M: Metric>(nodes: &mut [usize], dist: &M, touched: &[usize], window: usize) {
    let len = nodes.len();
    if len < 4 || window == 0 {
        return;
    }
    let mut cand: Vec<usize> = Vec::new();
    for &t in touched {
        let lo = t.saturating_sub(window);
        let hi = (t + window).min(len - 2);
        cand.extend(lo..=hi);
    }
    cand.sort_unstable();
    cand.dedup();
    for &i in &cand {
        let hi = (i + 2 * window).min(len - 1);
        for j in (i + 2)..=hi {
            let a = nodes[i];
            let b = nodes[i + 1];
            let c = nodes[j];
            let d = nodes[(j + 1) % len];
            let delta = dist.get(a, c) + dist.get(b, d) - dist.get(a, b) - dist.get(c, d);
            if delta < -1e-12 {
                nodes[i + 1..=j].reverse();
            }
        }
    }
}

/// The incremental replanner: cached cycle partition, per-class
/// `DynamicSet`s, and the anchor grid they are dispatched on.
#[derive(Debug)]
pub struct IncrementalPlanner {
    cfg: IncrementalConfig,
    /// Base interval `τ̂₁` of the cached partition.
    tau1: f64,
    /// Largest class `K` of the cached partition.
    k_max: usize,
    /// Seed time — the dispatch grid is `anchor + j·τ̂₁`, `j ≥ 1`.
    anchor: f64,
    /// Current power-of-two class of every sensor (w.r.t. `tau1`).
    class_of: Vec<usize>,
    /// `sets[k]` — live state of the cumulative base set `D_k`.
    sets: Vec<DynamicSet>,
    /// `(distance, depot index)` of every sensor's cheapest depot.
    best_depot: Vec<(f64, usize)>,
    migrated_sensors: usize,
    set_splices: usize,
}

impl IncrementalPlanner {
    /// Runs one full `MinTotalDistance-var` replan and seeds the planner
    /// from its builds. The returned plan is bit-identical to
    /// [`crate::var::replan_variable_with`] on the same input.
    pub fn seed(input: &VarInput, repair: RepairStrategy) -> (VarPlan, Self) {
        Self::seed_with(input, repair, IncrementalConfig::default())
    }

    /// [`Self::seed`] with explicit tuning knobs.
    pub fn seed_with(
        input: &VarInput,
        repair: RepairStrategy,
        cfg: IncrementalConfig,
    ) -> (VarPlan, Self) {
        let detailed = replan_variable_detailed(input, repair);
        Self::from_detailed(input, detailed, cfg)
    }

    /// Seeds the planner from an already-computed detailed replan.
    pub fn from_detailed(
        input: &VarInput,
        detailed: VarDetailed,
        cfg: IncrementalConfig,
    ) -> (VarPlan, Self) {
        let VarDetailed { plan, partition, base_builds } = detailed;
        let network = input.network;
        let n = network.n();
        assert!(n > 0, "seeding needs at least one sensor");
        let src = network.dist_source();
        let best_depot: Vec<(f64, usize)> = (0..n)
            .map(|i| {
                let node = network.sensor_node(i);
                let mut best = (f64::INFINITY, 0usize);
                for l in 0..network.q() {
                    let d = src.get(node, network.depot_node(l));
                    if d < best.0 {
                        best = (d, l);
                    }
                }
                best
            })
            .collect();
        let k_max = partition.k_max();
        let sets: Vec<DynamicSet> = base_builds
            .into_iter()
            .enumerate()
            .map(|(k, (forest, qt))| {
                DynamicSet::from_build(network, partition.cumulative(k), &forest, qt)
            })
            .collect();
        let planner = Self {
            cfg,
            tau1: partition.tau1,
            k_max,
            anchor: input.now,
            class_of: partition.class_of,
            sets,
            best_depot,
            migrated_sensors: 0,
            set_splices: 0,
        };
        (plan, planner)
    }

    /// One incremental replanning round at `input.now`: re-derives every
    /// sensor's class against the cached `τ̂₁`, splices the affected base
    /// sets, and emits the plan on the anchor grid — or refuses with a
    /// [`FullReason`] when the cached partition no longer applies.
    pub fn replan(&mut self, input: &VarInput) -> ReplanOutcome {
        let network = input.network;
        let n = network.n();
        assert_eq!(self.class_of.len(), n, "planner seeded for a different network");
        assert_eq!(input.max_cycles.len(), n, "one max cycle per sensor");
        assert_eq!(input.residuals.len(), n, "one residual per sensor");
        assert!(input.now < input.horizon, "replanning after the horizon");
        assert!(input.now + 1e-9 >= self.anchor, "replanning before the anchor");

        if input.max_cycles.iter().any(|&c| c < self.tau1) {
            return ReplanOutcome::NeedsFull(FullReason::Tau1Undercut);
        }
        let mut changes: Vec<(usize, usize)> = Vec::new();
        for (i, &cycle) in input.max_cycles.iter().enumerate() {
            let class = power_class(self.tau1, cycle);
            if class > self.k_max {
                return ReplanOutcome::NeedsFull(FullReason::ClassOverflow);
            }
            if class != self.class_of[i] {
                changes.push((i, class));
            }
        }
        if changes.len() as f64 > self.cfg.migration_fallback_fraction * n as f64 {
            return ReplanOutcome::NeedsFull(FullReason::TooManyMigrations);
        }

        self.apply_migrations(network, &changes);
        let plan = self.emit(input);
        ReplanOutcome::Incremental(plan)
    }

    /// Applies class migrations by splicing every affected base set
    /// (sensor `s` moving class `a → b` enters or leaves exactly the
    /// cumulative sets `D_k` with `min(a,b) ≤ k < max(a,b)`). Returns the
    /// indices of the spliced sets, ascending. Exposed so the online
    /// controller can drive surgery from its own drift detection.
    pub fn apply_migrations(
        &mut self,
        network: &Network,
        changes: &[(usize, usize)],
    ) -> Vec<usize> {
        let mut removed: Vec<Vec<usize>> = vec![Vec::new(); self.k_max + 1];
        let mut inserted: Vec<Vec<usize>> = vec![Vec::new(); self.k_max + 1];
        for &(s, new_class) in changes {
            assert!(new_class <= self.k_max, "class {new_class} beyond cached K={}", self.k_max);
            let old = self.class_of[s];
            if new_class == old {
                continue;
            }
            if new_class < old {
                // Serving more often: s joins the smaller sets.
                for ins in inserted.iter_mut().take(old).skip(new_class) {
                    ins.push(s);
                }
            } else {
                for rem in removed.iter_mut().take(new_class).skip(old) {
                    rem.push(s);
                }
            }
            self.class_of[s] = new_class;
            self.migrated_sensors += 1;
        }
        let mut spliced = Vec::new();
        for k in 0..=self.k_max {
            if removed[k].is_empty() && inserted[k].is_empty() {
                continue;
            }
            removed[k].sort_unstable();
            removed[k].dedup();
            inserted[k].sort_unstable();
            inserted[k].dedup();
            self.sets[k].splice(network, &removed[k], &inserted[k], &self.best_depot, &self.cfg);
            self.set_splices += 1;
            spliced.push(k);
        }
        spliced
    }

    /// Emits a [`VarPlan`] from the current sets: cached base tours on the
    /// anchor grid, plus one freshly-routed immediate batch for sensors
    /// whose residual cannot reach their next grid service.
    fn emit(&self, input: &VarInput) -> VarPlan {
        let network = input.network;
        let n = network.n();
        let mut series = ScheduleSeries::new();
        let base_set_ids: Vec<usize> =
            self.sets.iter().map(|s| series.add_set(s.tours.clone())).collect();

        let urgent: Vec<usize> = (0..n)
            .filter(|&i| {
                let step = self.tau1 * (1u64 << self.class_of[i]) as f64;
                let required = self.next_grid_service(input.now, step).min(input.horizon);
                input.now + input.residuals[i] + 1e-9 < required
            })
            .collect();
        if !urgent.is_empty() {
            let nodes: Vec<usize> = urgent.iter().map(|&i| network.sensor_node(i)).collect();
            let qt = q_rooted_tsp_src(
                &network.dist_source(),
                &nodes,
                &network.depot_nodes(),
                input.polish_rounds,
            );
            let id = series.add_set(TourSet::from_qtours(qt, |v| v >= n));
            series.push_dispatch(input.now, id);
        }

        let mut j = ((input.now - self.anchor) / self.tau1).floor().max(0.0) as u64;
        loop {
            j += 1;
            let t = self.anchor + j as f64 * self.tau1;
            if t >= input.horizon {
                break;
            }
            if t <= input.now + 1e-9 {
                continue;
            }
            series.push_dispatch(t, base_set_ids[nu2(j).min(self.k_max)]);
        }

        let assigned_cycles: Vec<f64> =
            self.class_of.iter().map(|&c| self.tau1 * (1u64 << c) as f64).collect();
        VarPlan { series, assigned_cycles, base_set_ids }
    }

    /// First grid service of a class with period `step` strictly after
    /// `now`.
    fn next_grid_service(&self, now: f64, step: f64) -> f64 {
        let laps = ((now - self.anchor) / step).floor().max(0.0);
        let mut t = self.anchor + (laps + 1.0) * step;
        while t <= now + 1e-9 {
            t += step;
        }
        t
    }

    /// Base interval `τ̂₁` of the cached partition.
    pub fn tau1(&self) -> f64 {
        self.tau1
    }

    /// Largest class `K` of the cached partition.
    pub fn k_max(&self) -> usize {
        self.k_max
    }

    /// The grid origin (seed time).
    pub fn anchor(&self) -> f64 {
        self.anchor
    }

    /// Current class of every sensor.
    pub fn class_of(&self) -> &[usize] {
        &self.class_of
    }

    /// The cycle `τ̂₁·2^class` sensor `i` is currently served at.
    pub fn assigned_cycle(&self, i: usize) -> f64 {
        self.tau1 * (1u64 << self.class_of[i]) as f64
    }

    /// Current members of base set `D_k`, ascending sensor ids.
    pub fn set_members(&self, k: usize) -> &[usize] {
        &self.sets[k].members
    }

    /// Current tours of base set `D_k`.
    pub fn tour_set(&self, k: usize) -> &TourSet {
        &self.sets[k].tours
    }

    /// Current forest weight of base set `D_k`.
    pub fn forest_weight(&self, k: usize) -> f64 {
        self.sets[k].weight
    }

    /// Total sensors that changed class since seeding.
    pub fn migrated_sensors(&self) -> usize {
        self.migrated_sensors
    }

    /// Total per-set splice operations since seeding.
    pub fn set_splices(&self) -> usize {
        self.set_splices
    }

    /// Doubling-rebuilt tour cost of `D_k`'s current forest — what the
    /// paper's Algorithm 2 would produce from the same trees. Test hook
    /// for the warm-tour bound.
    #[cfg(test)]
    fn rebuilt_cost(&self, network: &Network, k: usize) -> f64 {
        let set = &self.sets[k];
        let src = network.dist_source();
        // Root edges first, then terminal edges — the order `uncontract`
        // emits a tree in, which the doubling tour depends on.
        let mut by_root: Vec<Vec<(usize, usize)>> = vec![Vec::new(); network.q()];
        for &(r, s) in &set.root_edges {
            by_root[r].push((network.depot_node(r), network.sensor_node(s)));
        }
        for &(a, b) in &set.term_edges {
            by_root[set.assignment[a]].push((network.sensor_node(a), network.sensor_node(b)));
        }
        by_root
            .iter()
            .enumerate()
            .map(|(r, edges)| tour_from_tree_doubling(edges, network.depot_node(r)).length(&src))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qmsf::rooted_msf_points;
    use crate::var::check_var_plan;
    use rand::{Rng, SeedableRng};

    fn sparse_network(n: usize, q: usize, seed: u64) -> Network {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let sensors: Vec<Point2> = (0..n)
            .map(|_| Point2::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0)))
            .collect();
        let mut depots = vec![Point2::new(500.0, 500.0)];
        depots.extend(
            (1..q).map(|_| Point2::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0))),
        );
        Network::sparse(sensors, depots)
    }

    /// Cycles spanning three power-of-two classes over τ̂₁ = 4.
    fn spread_cycles(n: usize, rng: &mut impl Rng) -> Vec<f64> {
        let mut cycles: Vec<f64> = (0..n).map(|_| rng.gen_range(4.0..32.0)).collect();
        cycles[0] = 4.0; // pin τ̂₁
        cycles[n - 1] = 31.0; // pin K = 2
        cycles
    }

    fn seed_planner(
        network: &Network,
        cycles: &[f64],
        cfg: IncrementalConfig,
    ) -> (VarPlan, IncrementalPlanner) {
        let residuals = cycles.to_vec();
        let input = VarInput {
            network,
            max_cycles: cycles,
            residuals: &residuals,
            now: 0.0,
            horizon: 200.0,
            polish_rounds: 0,
        };
        IncrementalPlanner::seed_with(&input, RepairStrategy::NearestScheduling, cfg)
    }

    /// Random ±1 class migrations, clamped to the cached band.
    fn random_migrations(
        planner: &IncrementalPlanner,
        count: usize,
        rng: &mut impl Rng,
    ) -> Vec<(usize, usize)> {
        let n = planner.class_of().len();
        let mut changes = Vec::new();
        let mut seen = vec![false; n];
        for _ in 0..count {
            let s = rng.gen_range(0..n);
            if seen[s] {
                continue;
            }
            seen[s] = true;
            let old = planner.class_of()[s];
            let new = if old == 0 {
                1
            } else if old == planner.k_max() {
                old - 1
            } else if rng.gen_bool(0.5) {
                old + 1
            } else {
                old - 1
            };
            changes.push((s, new));
        }
        changes
    }

    #[test]
    fn seeded_plan_matches_from_scratch_bitwise() {
        for seed in 0..4u64 {
            let network = sparse_network(60, 3, seed + 20);
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let cycles = spread_cycles(60, &mut rng);
            let residuals: Vec<f64> = cycles.iter().map(|&c| rng.gen_range(0.3 * c..=c)).collect();
            let input = VarInput {
                network: &network,
                max_cycles: &cycles,
                residuals: &residuals,
                now: 5.0,
                horizon: 150.0,
                polish_rounds: 0,
            };
            let scratch = crate::var::replan_variable(&input);
            let (seeded, _) = IncrementalPlanner::seed(&input, RepairStrategy::NearestScheduling);
            assert_eq!(
                scratch.series.service_cost().to_bits(),
                seeded.series.service_cost().to_bits(),
                "seed {seed}"
            );
            assert_eq!(scratch.assigned_cycles, seeded.assigned_cycles, "seed {seed}");
            assert_eq!(scratch.series.dispatch_count(), seeded.series.dispatch_count());
        }
    }

    #[test]
    fn spliced_forest_matches_from_scratch_msf() {
        // Property (a): after k random class migrations, every base set's
        // spliced forest costs the same as a from-scratch sparse MSF over
        // its current members.
        for seed in 0..6u64 {
            let n = 120;
            let network = sparse_network(n, 3, seed + 100);
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed + 7);
            let cycles = spread_cycles(n, &mut rng);
            let (_, mut planner) = seed_planner(&network, &cycles, IncrementalConfig::default());
            for round in 0..3 {
                let changes = random_migrations(&planner, 10, &mut rng);
                planner.apply_migrations(&network, &changes);
                for k in 0..=planner.k_max() {
                    let members = planner.set_members(k);
                    let tpts: Vec<Point2> =
                        members.iter().map(|&s| network.sensor_pos(s)).collect();
                    let root_dist: Vec<Vec<f64>> = (0..network.q())
                        .map(|l| {
                            let dp = network.depot_pos(l);
                            tpts.iter().map(|p| dp.dist(*p)).collect()
                        })
                        .collect();
                    let fresh = rooted_msf_points(&tpts, &root_dist, SPARSE_MSF_K);
                    let diff = (fresh.weight - planner.forest_weight(k)).abs();
                    assert!(
                        diff < 1e-9,
                        "seed {seed} round {round} class {k}: spliced {} vs scratch {}",
                        planner.forest_weight(k),
                        fresh.weight
                    );
                }
            }
        }
    }

    #[test]
    fn warm_tours_stay_feasible_and_bounded() {
        // Property (b): after migrations every base set's tours still start
        // at their depots, cover exactly the members, and cost no more than
        // a fresh Algorithm-2 construction from the same forest (hence
        // within 2× the forest weight).
        for seed in 0..6u64 {
            let n = 100;
            let network = sparse_network(n, 4, seed + 300);
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed + 31);
            let cycles = spread_cycles(n, &mut rng);
            let (_, mut planner) = seed_planner(&network, &cycles, IncrementalConfig::default());
            for _ in 0..3 {
                let changes = random_migrations(&planner, 12, &mut rng);
                planner.apply_migrations(&network, &changes);
            }
            for k in 0..=planner.k_max() {
                let set = planner.tour_set(k);
                for (l, tour) in set.tours().iter().enumerate() {
                    assert_eq!(tour.start(), Some(network.depot_node(l)), "seed {seed} D_{k}");
                }
                assert_eq!(set.sensors(), planner.set_members(k), "seed {seed} D_{k} coverage");
                let rebuilt = planner.rebuilt_cost(&network, k);
                assert!(
                    set.cost() <= rebuilt + 1e-9,
                    "seed {seed} D_{k}: warm {} vs rebuilt {rebuilt}",
                    set.cost()
                );
                assert!(
                    set.cost() <= 2.0 * planner.forest_weight(k) + 1e-9,
                    "seed {seed} D_{k}: warm {} vs 2×MSF {}",
                    set.cost(),
                    2.0 * planner.forest_weight(k)
                );
            }
        }
    }

    #[test]
    fn parallel_tour_repair_is_bit_identical() {
        // Property (c): the per-root warm repair collects in root order, so
        // any worker count reproduces the sequential result bit for bit.
        let n = 150;
        let network = sparse_network(n, 4, 77);
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let cycles = spread_cycles(n, &mut rng);
        let changes_rng_seed = 55u64;
        let run = |workers: usize| {
            let cfg = IncrementalConfig { tour_workers: Some(workers), ..Default::default() };
            let (_, mut planner) = seed_planner(&network, &cycles, cfg);
            let mut rng = rand::rngs::StdRng::seed_from_u64(changes_rng_seed);
            for _ in 0..3 {
                let changes = random_migrations(&planner, 15, &mut rng);
                planner.apply_migrations(&network, &changes);
            }
            planner
        };
        let seq = run(1);
        for workers in [2, 4, 7] {
            let par = run(workers);
            for k in 0..=seq.k_max() {
                assert_eq!(
                    seq.tour_set(k).cost().to_bits(),
                    par.tour_set(k).cost().to_bits(),
                    "workers {workers} D_{k}"
                );
                for (a, b) in seq.tour_set(k).tours().iter().zip(par.tour_set(k).tours()) {
                    assert_eq!(a.nodes(), b.nodes(), "workers {workers} D_{k}");
                }
            }
        }
    }

    #[test]
    fn incremental_replans_stay_feasible() {
        // End to end: drift cycles within the cached band across several
        // rounds; every incremental plan must pass the var-plan oracle.
        for seed in 0..5u64 {
            let n = 80;
            let network = sparse_network(n, 3, seed + 500);
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed + 13);
            let mut cycles = spread_cycles(n, &mut rng);
            let (_, mut planner) = seed_planner(&network, &cycles, IncrementalConfig::default());
            let mut now = 0.0;
            for round in 0..4 {
                now += rng.gen_range(3.0..9.0);
                // Drift ~10% of sensors to a neighbouring class (staying in
                // [τ̂₁, 2^(K+1)·τ̂₁)), everyone else wiggles in-band.
                for c in cycles.iter_mut() {
                    if rng.gen_bool(0.1) {
                        *c = if rng.gen_bool(0.5) {
                            (*c * 2.0).min(31.9)
                        } else {
                            (*c / 2.0).max(4.0)
                        };
                    }
                }
                let residuals: Vec<f64> =
                    cycles.iter().map(|&c| rng.gen_range(0.1 * c..=c)).collect();
                let input = VarInput {
                    network: &network,
                    max_cycles: &cycles,
                    residuals: &residuals,
                    now,
                    horizon: 200.0,
                    polish_rounds: 0,
                };
                match planner.replan(&input) {
                    ReplanOutcome::Incremental(plan) => {
                        check_var_plan(&input, &plan)
                            .unwrap_or_else(|e| panic!("seed {seed} round {round}: {e:?}"));
                        assert_eq!(plan.base_set_ids.len(), planner.k_max() + 1);
                    }
                    ReplanOutcome::NeedsFull(r) => {
                        panic!("seed {seed} round {round}: unexpected fallback {r:?}")
                    }
                }
            }
            assert!(planner.migrated_sensors() > 0, "seed {seed}: drift never migrated");
        }
    }

    #[test]
    fn emptied_class_keeps_the_grid_feasible() {
        // Migrating the only class-0 sensors up empties D_0; its dispatches
        // stay on the grid as idle tours and the plan remains feasible.
        let n = 20;
        let network = sparse_network(n, 2, 900);
        let mut cycles = vec![16.0; n];
        cycles[0] = 4.0;
        cycles[1] = 8.0;
        let (_, mut planner) = seed_planner(&network, &cycles, IncrementalConfig::default());
        assert_eq!(planner.set_members(0), &[0]);
        cycles[0] = 8.5; // class 0 → 1: D_0 empties
        let residuals: Vec<f64> = cycles.iter().map(|&c| 0.9 * c).collect();
        let input = VarInput {
            network: &network,
            max_cycles: &cycles,
            residuals: &residuals,
            now: 6.0,
            horizon: 120.0,
            polish_rounds: 0,
        };
        match planner.replan(&input) {
            ReplanOutcome::Incremental(plan) => {
                assert!(planner.set_members(0).is_empty());
                assert_eq!(planner.tour_set(0).cost(), 0.0);
                check_var_plan(&input, &plan).unwrap();
            }
            ReplanOutcome::NeedsFull(r) => panic!("unexpected fallback {r:?}"),
        }
    }

    #[test]
    fn fallback_reasons_fire() {
        let n = 30;
        let network = sparse_network(n, 2, 1200);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let cycles = spread_cycles(n, &mut rng);
        let residuals = cycles.clone();
        fn at<'a>(network: &'a Network, cycles: &'a [f64], residuals: &'a [f64]) -> VarInput<'a> {
            VarInput {
                network,
                max_cycles: cycles,
                residuals,
                now: 2.0,
                horizon: 150.0,
                polish_rounds: 0,
            }
        }

        // τ̂₁ undercut.
        let (_, mut planner) = seed_planner(&network, &cycles, IncrementalConfig::default());
        let mut under = cycles.clone();
        under[3] = 2.0; // < τ̂₁ = 4
        assert!(matches!(
            planner.replan(&at(&network, &under, &residuals)),
            ReplanOutcome::NeedsFull(FullReason::Tau1Undercut)
        ));

        // Class overflow.
        let mut over = cycles.clone();
        over[3] = 40.0; // class 3 > K = 2
        assert!(matches!(
            planner.replan(&at(&network, &over, &residuals)),
            ReplanOutcome::NeedsFull(FullReason::ClassOverflow)
        ));

        // Migration budget.
        let cfg = IncrementalConfig { migration_fallback_fraction: 0.0, ..Default::default() };
        let (_, mut strict) = seed_planner(&network, &cycles, cfg);
        let mut drift = cycles.clone();
        drift[5] = (drift[5] * 2.0).min(31.9);
        if power_class(4.0, drift[5]) == power_class(4.0, cycles[5]) {
            drift[5] = 17.0; // guarantee a class change from [4,8) or [8,16)
        }
        assert!(matches!(
            strict.replan(&at(&network, &drift, &residuals)),
            ReplanOutcome::NeedsFull(FullReason::TooManyMigrations)
        ));
    }

    #[test]
    fn splice_counters_track_surgery() {
        let n = 40;
        let network = sparse_network(n, 2, 42);
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let cycles = spread_cycles(n, &mut rng);
        let (_, mut planner) = seed_planner(&network, &cycles, IncrementalConfig::default());
        assert_eq!(planner.migrated_sensors(), 0);
        assert_eq!(planner.set_splices(), 0);
        // One sensor hops two classes: both D_min..D_max sets get spliced.
        let s = planner.set_members(0)[0];
        let spliced = planner.apply_migrations(&network, &[(s, 2)]);
        assert_eq!(spliced, vec![0, 1]);
        assert_eq!(planner.migrated_sensors(), 1);
        assert_eq!(planner.set_splices(), 2);
    }
}
