//! Schedule-series analysis: the operational numbers a WSN operator reads
//! off a plan before committing a charger fleet to it.

use crate::schedule::ScheduleSeries;
use serde::{Deserialize, Serialize};

/// Per-sensor and per-dispatch statistics of a schedule series.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SeriesStats {
    /// Charge count per sensor.
    pub charges_per_sensor: Vec<usize>,
    /// Largest charge gap per sensor, including the leading gap from
    /// `t = 0` and the trailing gap to the horizon (`horizon` itself when a
    /// sensor is never charged).
    pub max_gap_per_sensor: Vec<f64>,
    /// Mean inter-charge gap per sensor (`NaN`-free: sensors with fewer
    /// than two charges report the horizon-splitting gap mean).
    pub mean_gap_per_sensor: Vec<f64>,
    /// Total dispatches.
    pub dispatches: usize,
    /// Mean sensors covered per dispatch.
    pub mean_sensors_per_dispatch: f64,
    /// Cost of the cheapest and the most expensive dispatch.
    pub dispatch_cost_range: (f64, f64),
    /// Mean time between consecutive dispatches.
    pub mean_dispatch_gap: f64,
}

/// Computes [`SeriesStats`] for a series over `n` sensors and the given
/// horizon. The series' dispatches must be time-sorted (all planners emit
/// them sorted).
pub fn analyze(series: &ScheduleSeries, n: usize, horizon: f64) -> SeriesStats {
    let mut charges_per_sensor = vec![0usize; n];
    let mut max_gap = vec![0.0f64; n];
    let mut mean_gap = vec![0.0f64; n];

    for i in 0..n {
        let times = series.charge_times(i);
        charges_per_sensor[i] = times.len();
        // Gaps: 0 → t_1 → … → t_k → horizon.
        let mut prev = 0.0;
        let mut worst = 0.0f64;
        let mut total = 0.0;
        let mut count = 0usize;
        for &t in &times {
            worst = worst.max(t - prev);
            total += t - prev;
            count += 1;
            prev = t;
        }
        worst = worst.max(horizon - prev);
        total += horizon - prev;
        count += 1;
        max_gap[i] = worst;
        mean_gap[i] = total / count as f64;
    }

    let dispatches = series.dispatch_count();
    let mut min_cost = f64::INFINITY;
    let mut max_cost = 0.0f64;
    let mut covered = 0usize;
    let mut prev_time: Option<f64> = None;
    let mut gap_total = 0.0;
    let mut gap_count = 0usize;
    for d in series.dispatches() {
        let set = series.set_of(d);
        min_cost = min_cost.min(set.cost());
        max_cost = max_cost.max(set.cost());
        covered += set.sensors().len();
        if let Some(p) = prev_time {
            gap_total += d.time - p;
            gap_count += 1;
        }
        prev_time = Some(d.time);
    }
    if dispatches == 0 {
        min_cost = 0.0;
    }

    SeriesStats {
        charges_per_sensor,
        max_gap_per_sensor: max_gap,
        mean_gap_per_sensor: mean_gap,
        dispatches,
        mean_sensors_per_dispatch: if dispatches == 0 {
            0.0
        } else {
            covered as f64 / dispatches as f64
        },
        dispatch_cost_range: (min_cost, max_cost),
        mean_dispatch_gap: if gap_count == 0 { 0.0 } else { gap_total / gap_count as f64 },
    }
}

impl SeriesStats {
    /// True when every sensor's worst gap is within its cycle — the same
    /// check as [`crate::feasibility::check_series`], phrased on stats.
    pub fn feasible_for(&self, cycles: &[f64]) -> bool {
        self.max_gap_per_sensor.iter().zip(cycles.iter()).all(|(&gap, &tau)| gap <= tau + 1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mtd::{plan_min_total_distance, MtdConfig};
    use crate::network::{Instance, Network};
    use perpetuum_geom::Point2;

    fn instance() -> Instance {
        let sensors = vec![Point2::new(10.0, 0.0), Point2::new(20.0, 0.0), Point2::new(30.0, 0.0)];
        let depots = vec![Point2::ORIGIN];
        Instance::new(Network::new(sensors, depots), vec![1.0, 2.0, 8.0], 16.0)
    }

    #[test]
    fn stats_match_known_plan() {
        let inst = instance();
        let plan = plan_min_total_distance(&inst, &MtdConfig::default());
        let stats = analyze(&plan, 3, 16.0);
        // Sensor 0 (cycle 1): charged at 1..15 → 15 charges, gap 1.
        assert_eq!(stats.charges_per_sensor[0], 15);
        assert!((stats.max_gap_per_sensor[0] - 1.0).abs() < 1e-9);
        // Sensor 1 (cycle 2): 7 charges (2,4,…,14), max gap 2.
        assert_eq!(stats.charges_per_sensor[1], 7);
        assert!((stats.max_gap_per_sensor[1] - 2.0).abs() < 1e-9);
        // Sensor 2 (cycle 8): charged at 8, gaps 8 and 8.
        assert_eq!(stats.charges_per_sensor[2], 1);
        assert!((stats.max_gap_per_sensor[2] - 8.0).abs() < 1e-9);
        assert!((stats.mean_gap_per_sensor[2] - 8.0).abs() < 1e-9);
        assert_eq!(stats.dispatches, 15);
        assert!(stats.feasible_for(inst.cycles()));
        assert!(!stats.feasible_for(&[0.5, 2.0, 8.0]));
        assert!((stats.mean_dispatch_gap - 1.0).abs() < 1e-9);
        assert!(stats.dispatch_cost_range.0 > 0.0);
        assert!(stats.dispatch_cost_range.1 >= stats.dispatch_cost_range.0);
    }

    #[test]
    fn empty_series() {
        let stats = analyze(&ScheduleSeries::new(), 2, 10.0);
        assert_eq!(stats.dispatches, 0);
        assert_eq!(stats.mean_sensors_per_dispatch, 0.0);
        assert_eq!(stats.dispatch_cost_range, (0.0, 0.0));
        assert_eq!(stats.max_gap_per_sensor, vec![10.0, 10.0]);
        assert!(stats.feasible_for(&[10.0, 12.0]));
        assert!(!stats.feasible_for(&[9.0, 12.0]));
    }
}
