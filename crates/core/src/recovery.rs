//! Degraded-mode recovery planning: re-route orphaned sensors onto the
//! surviving depot subset.
//!
//! When a mobile charger breaks down mid-period, the sensors its aborted
//! tours would have served (its *orphans*) still face hard charging
//! deadlines. The recovery planner re-solves Algorithm 2 over exactly the
//! orphaned sensor set, restricted to the roots whose chargers are still
//! up — the `q`-rooted machinery ([`crate::qtsp::q_rooted_tsp_src`], and
//! through it the metric-generic [`crate::qmsf::rooted_msf_general`] /
//! sparse path) already accepts an arbitrary root subset, so a degraded
//! plan costs the same near-linear pipeline as a healthy one. The result
//! is expanded back to a full `q`-tour [`TourSet`] (down chargers get
//! singleton depot tours) so the simulation engine's per-charger
//! accounting stays positional.

use crate::network::{Network, SensorId};
use crate::qtsp::{q_rooted_tsp_src, QTours};
use crate::schedule::TourSet;
use perpetuum_graph::Tour;

/// Indices of the depots whose chargers are up. `alive[l]` corresponds to
/// depot `l`.
pub fn surviving_depots(alive: &[bool]) -> Vec<usize> {
    alive.iter().enumerate().filter_map(|(l, &up)| up.then_some(l)).collect()
}

/// Plans one emergency charging scheduling covering `sensors` using only
/// the chargers marked up in `alive` (indexed by depot, `alive.len()`
/// must equal `network.q()`).
///
/// Returns `None` when no charger is up — the caller must retry later.
/// Otherwise the returned [`TourSet`] has exactly `q` tours in depot
/// order; every down charger's tour is an idle singleton of its depot, so
/// the set plugs into the engine's dispatch path unchanged.
///
/// # Panics
/// Panics when `alive.len() != network.q()` or any sensor id is out of
/// range.
pub fn degraded_tour_set(
    network: &Network,
    sensors: &[SensorId],
    alive: &[bool],
    polish_rounds: usize,
) -> Option<TourSet> {
    let q = network.q();
    assert_eq!(alive.len(), q, "one liveness flag per depot");
    assert!(sensors.iter().all(|&s| s < network.n()), "sensor id out of range");
    let up = surviving_depots(alive);
    if up.is_empty() {
        return None;
    }
    let roots: Vec<usize> = up.iter().map(|&l| network.depot_node(l)).collect();
    let terminals: Vec<usize> = sensors.iter().map(|&s| network.sensor_node(s)).collect();
    let sub = q_rooted_tsp_src(&network.dist_source(), &terminals, &roots, polish_rounds);

    // Expand the |up|-tour solution back to q positional tours.
    let mut tours = Vec::with_capacity(q);
    let mut tour_lengths = Vec::with_capacity(q);
    let mut it = sub.tours.into_iter().zip(sub.tour_lengths);
    for (l, &is_up) in alive.iter().enumerate() {
        if is_up {
            let (tour, len) = it.next().expect("one sub-tour per surviving depot");
            tours.push(tour);
            tour_lengths.push(len);
        } else {
            tours.push(Tour::singleton(network.depot_node(l)));
            tour_lengths.push(0.0);
        }
    }
    let qt = QTours { tours, tour_lengths, cost: sub.cost };
    Some(TourSet::from_qtours(qt, |v| network.is_depot(v)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use perpetuum_geom::Point2;

    /// 4 sensors on a line, depots at both ends.
    fn net() -> Network {
        let sensors: Vec<Point2> = (1..=4).map(|i| Point2::new(i as f64 * 20.0, 0.0)).collect();
        Network::new(sensors, vec![Point2::ORIGIN, Point2::new(100.0, 0.0)])
    }

    #[test]
    fn surviving_depots_filters() {
        assert_eq!(surviving_depots(&[true, false, true]), vec![0, 2]);
        assert!(surviving_depots(&[false]).is_empty());
    }

    #[test]
    fn all_up_covers_with_both_chargers() {
        let n = net();
        let set = degraded_tour_set(&n, &[0, 1, 2, 3], &[true, true], 0).unwrap();
        assert_eq!(set.tours().len(), 2);
        assert_eq!(set.sensors(), &[0, 1, 2, 3]);
        assert_eq!(set.tours()[0].start(), Some(n.depot_node(0)));
        assert_eq!(set.tours()[1].start(), Some(n.depot_node(1)));
    }

    #[test]
    fn down_charger_gets_idle_singleton_and_survivor_covers_all() {
        let n = net();
        let set = degraded_tour_set(&n, &[0, 1, 2, 3], &[false, true], 0).unwrap();
        assert_eq!(set.tours().len(), 2, "positional q-tour shape is preserved");
        assert_eq!(set.tours()[0].nodes(), &[n.depot_node(0)]);
        assert_eq!(set.tour_lengths()[0], 0.0);
        assert_eq!(set.sensors(), &[0, 1, 2, 3]);
        // All coverage rides the surviving depot's tour.
        assert_eq!(set.tours()[1].start(), Some(n.depot_node(1)));
        assert!((set.cost() - set.tour_lengths()[1]).abs() < 1e-12);
        // Farthest orphan from depot 1 is sensor 0 at x = 20: out-and-back
        // lower-bounds the tour.
        assert!(set.cost() >= 2.0 * 80.0 - 1e-9);
    }

    #[test]
    fn no_survivors_returns_none() {
        let n = net();
        assert!(degraded_tour_set(&n, &[0, 1], &[false, false], 0).is_none());
    }

    #[test]
    fn empty_orphan_set_is_all_idle() {
        let n = net();
        let set = degraded_tour_set(&n, &[], &[true, false], 0).unwrap();
        assert!(set.is_idle());
        assert_eq!(set.cost(), 0.0);
        assert_eq!(set.tours().len(), 2);
    }

    #[test]
    fn sparse_network_plans_without_dense_matrix() {
        let sensors: Vec<Point2> =
            (1..=6).map(|i| Point2::new(i as f64 * 15.0, (i % 2) as f64 * 10.0)).collect();
        let net = Network::sparse(sensors, vec![Point2::ORIGIN, Point2::new(120.0, 0.0)]);
        assert!(!net.has_dense_matrix());
        let set = degraded_tour_set(&net, &[1, 3, 5], &[true, false], 1).unwrap();
        assert_eq!(set.sensors(), &[1, 3, 5]);
        assert!(!net.has_dense_matrix(), "recovery must stay on the sparse path");
    }

    #[test]
    fn subset_matches_direct_qtsp_on_surviving_roots() {
        let n = net();
        let set = degraded_tour_set(&n, &[1, 2], &[true, false], 0).unwrap();
        let direct =
            crate::qtsp::q_rooted_tsp_src(&n.dist_source(), &[1, 2], &[n.depot_node(0)], 0);
        assert!((set.cost() - direct.cost).abs() < 1e-12);
    }
}
