//! Min–max `q`-rooted tour cover (extension).
//!
//! The paper minimises the chargers' *total* travel distance; its
//! reference \[16\] (Xu, Liang, Lin — "Approximation algorithms for min-max
//! cycle cover problems") instead minimises the *longest* tour, which
//! bounds how long a charging task takes when the `q` chargers drive in
//! parallel. This module provides a practical heuristic for that variant
//! and is used by the objective-comparison experiment:
//!
//! 1. start from the optimal `q`-rooted MSF assignment (Algorithm 1),
//! 2. route each group ([`crate::qtsp::Routing`]),
//! 3. local search: repeatedly move a sensor from the longest tour to the
//!    charger whose tour grows the least, while the makespan improves.
//!
//! Moves are evaluated by re-routing the affected groups, so the search is
//! `O(rounds · n · q)` routing calls — fine at experiment scale.

use crate::network::Network;
use crate::qtsp::{q_rooted_tsp_routed_src, Routing};
use crate::schedule::TourSet;
use perpetuum_graph::Tour;

/// Result of the min–max cover heuristic.
#[derive(Debug, Clone)]
pub struct MinMaxCover {
    /// One tour per charger, starting at its depot.
    pub tours: Vec<Tour>,
    /// Total travelled distance (the paper's objective, for comparison).
    pub total: f64,
    /// Longest single tour (the min–max objective).
    pub makespan: f64,
    /// Sensor → charger assignment.
    pub assignment: Vec<usize>,
    /// Local-search moves that were applied.
    pub moves: usize,
}

/// Computes a min–max `q`-rooted tour cover of `sensors` (sensor indices)
/// over the network's depots.
///
/// `max_rounds` bounds the local-search passes (each pass tries to relieve
/// the current longest tour once).
pub fn min_max_cover(
    network: &Network,
    sensors: &[usize],
    routing: Routing,
    max_rounds: usize,
) -> MinMaxCover {
    let q = network.q();
    let dist = network.dist_source();
    let depots = network.depot_nodes();

    // Seed assignment from Algorithm 1's forest.
    let nodes: Vec<usize> = sensors.iter().map(|&i| network.sensor_node(i)).collect();
    let forest = crate::qmsf::q_rooted_msf_src(&dist, &nodes, &depots);
    // assignment[s] indexes into `sensors`.
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); q];
    for (t, &r) in forest.assignment.iter().enumerate() {
        groups[r].push(t);
    }

    // Route one group through its own depot.
    let route = |group: &[usize], depot: usize| -> Tour {
        let group_nodes: Vec<usize> = group.iter().map(|&t| nodes[t]).collect();
        if group_nodes.is_empty() {
            return Tour::singleton(depot);
        }
        let qt = q_rooted_tsp_routed_src(&dist, &group_nodes, &[depot], routing, 2);
        qt.tours.into_iter().next().expect("one root, one tour")
    };

    let mut tours: Vec<Tour> = (0..q).map(|l| route(&groups[l], depots[l])).collect();
    let mut lengths: Vec<f64> = tours.iter().map(|t| t.length(&dist)).collect();
    let mut moves = 0usize;

    for _ in 0..max_rounds {
        // The charger with the longest tour tries to shed a sensor.
        let (worst, &worst_len) = lengths
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .expect("q >= 1");
        if groups[worst].is_empty() {
            break;
        }

        // Best (sensor, target) move: minimise the resulting makespan.
        let mut best: Option<(usize, usize, Tour, Tour, f64)> = None;
        for (pos, &t) in groups[worst].iter().enumerate() {
            let mut donor: Vec<usize> = groups[worst].clone();
            donor.remove(pos);
            let donor_tour = route(&donor, depots[worst]);
            let donor_len = donor_tour.length(&dist);
            for l in 0..q {
                if l == worst {
                    continue;
                }
                let mut target = groups[l].clone();
                target.push(t);
                let target_tour = route(&target, depots[l]);
                let target_len = target_tour.length(&dist);
                // Makespan of the two affected tours after the move; other
                // tours are unchanged.
                let others = lengths
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != worst && i != l)
                    .map(|(_, &len)| len)
                    .fold(0.0f64, f64::max);
                let new_span = donor_len.max(target_len).max(others);
                match &best {
                    Some((.., b)) if *b <= new_span => {}
                    _ => best = Some((pos, l, donor_tour.clone(), target_tour, new_span)),
                }
            }
        }

        match best {
            Some((pos, l, donor_tour, target_tour, new_span)) if new_span + 1e-9 < worst_len => {
                let t = groups[worst].remove(pos);
                groups[l].push(t);
                lengths[worst] = donor_tour.length(&dist);
                lengths[l] = target_tour.length(&dist);
                tours[worst] = donor_tour;
                tours[l] = target_tour;
                moves += 1;
            }
            _ => break, // no improving move
        }
    }

    let total: f64 = lengths.iter().sum();
    let makespan = lengths.iter().cloned().fold(0.0f64, f64::max);
    let mut assignment = vec![usize::MAX; sensors.len()];
    for (l, group) in groups.iter().enumerate() {
        for &t in group {
            assignment[t] = l;
        }
    }
    MinMaxCover { tours, total, makespan, assignment, moves }
}

impl MinMaxCover {
    /// Converts into a [`TourSet`] (for dispatching through the standard
    /// schedule machinery).
    pub fn into_tour_set(self, network: &Network) -> TourSet {
        let n = network.n();
        TourSet::new(self.tours, &network.dist_source(), |v| v >= n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qtsp::q_rooted_tsp;
    use perpetuum_geom::Point2;
    use rand::{Rng, SeedableRng};

    fn network(n: usize, q: usize, seed: u64) -> Network {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let sensors: Vec<Point2> = (0..n)
            .map(|_| Point2::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0)))
            .collect();
        let depots: Vec<Point2> = (0..q)
            .map(|_| Point2::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0)))
            .collect();
        Network::new(sensors, depots)
    }

    #[test]
    fn covers_all_sensors_from_correct_depots() {
        let net = network(20, 3, 1);
        let sensors: Vec<usize> = (0..20).collect();
        let c = min_max_cover(&net, &sensors, Routing::Doubling, 50);
        assert_eq!(c.tours.len(), 3);
        for (l, t) in c.tours.iter().enumerate() {
            assert_eq!(t.start(), Some(net.depot_node(l)));
        }
        let mut covered: Vec<usize> =
            c.tours.iter().flat_map(|t| t.nodes().iter().copied()).filter(|&v| v < 20).collect();
        covered.sort_unstable();
        assert_eq!(covered, sensors);
        assert!(c.assignment.iter().all(|&a| a < 3));
    }

    #[test]
    fn makespan_never_exceeds_seed_solution() {
        for seed in 0..5u64 {
            let net = network(25, 4, seed + 10);
            let sensors: Vec<usize> = (0..25).collect();
            // Seed solution: Algorithm 2's tours.
            let qt = q_rooted_tsp(net.dist(), &sensors, &net.depot_nodes(), 0);
            let seed_span = qt.tours.iter().map(|t| t.length(net.dist())).fold(0.0f64, f64::max);
            let c = min_max_cover(&net, &sensors, Routing::Doubling, 100);
            assert!(c.makespan <= seed_span + 1e-6, "seed {seed}: {} vs {}", c.makespan, seed_span);
        }
    }

    #[test]
    fn balances_obviously_unbalanced_instance() {
        // All sensors near depot 0; depot 1 idle. The min-max search must
        // offload some onto depot 1 when that shortens the worst tour...
        // but only if it helps: with sensors tightly clustered at depot 0
        // it may not. Use two clusters to force sharing.
        let sensors: Vec<Point2> = (0..8)
            .map(|i| Point2::new(10.0 + (i % 4) as f64, if i < 4 { 0.0 } else { 100.0 }))
            .collect();
        let depots = vec![Point2::new(10.0, 0.0), Point2::new(10.0, 100.0)];
        let net = Network::new(sensors, depots);
        let all: Vec<usize> = (0..8).collect();
        let c = min_max_cover(&net, &all, Routing::Doubling, 100);
        // Each cluster should be served by its own depot.
        for i in 0..4 {
            assert_eq!(c.assignment[i], 0, "sensor {i}");
        }
        for i in 4..8 {
            assert_eq!(c.assignment[i], 1, "sensor {i}");
        }
    }

    #[test]
    fn single_charger_reduces_to_tsp() {
        let net = network(12, 1, 3);
        let sensors: Vec<usize> = (0..12).collect();
        let c = min_max_cover(&net, &sensors, Routing::Doubling, 10);
        assert!((c.total - c.makespan).abs() < 1e-9);
    }

    #[test]
    fn empty_sensor_set() {
        let net = network(0, 2, 4);
        let c = min_max_cover(&net, &[], Routing::Doubling, 10);
        assert_eq!(c.total, 0.0);
        assert_eq!(c.makespan, 0.0);
        assert_eq!(c.moves, 0);
    }

    #[test]
    fn into_tour_set_costs_match() {
        let net = network(10, 2, 5);
        let sensors: Vec<usize> = (0..10).collect();
        let c = min_max_cover(&net, &sensors, Routing::Doubling, 20);
        let total = c.total;
        let set = c.into_tour_set(&net);
        assert!((set.cost() - total).abs() < 1e-9);
        assert_eq!(set.sensors().len(), 10);
    }
}
