//! Lower bounds on the optimal service cost (Lemma 3).
//!
//! Lemma 3 of the paper: with `T = 2^m τ'_n` and the class partition
//! `V_0 … V_K`, the optimal `q`-rooted TSP cost `w(D*_k)` over
//! `R ∪ V_0 ∪ … ∪ V_k` satisfies `w(D*_k) ≤ OPT / (m · 2^{K−k})` — i.e.
//!
//! ```text
//! OPT ≥ max_k  m · 2^{K−k} · w(D*_k)
//! ```
//!
//! `w(D*_k)` itself is NP-hard, but Theorem 1 sandwiches it:
//! `w(D_k)/2 ≤ w(D*_k)` where `D_k` is our 2-approximate tour set, and the
//! `q`-rooted MSF weight is an even simpler valid lower bound
//! (`w(MSF_k) ≤ w(D*_k)`). Both give *certified* lower bounds on `OPT`, so
//! `cost(Algorithm 3) / bound` is a certified upper bound on the empirical
//! approximation ratio — the number the `ratio` experiment reports against
//! the paper's worst-case `2(K + 2)`.

use crate::network::Instance;
use crate::qmsf::q_rooted_msf_src;
use crate::rounding::partition_cycles;

/// A certified lower bound on the optimal service cost of an instance,
/// with the class index that achieved it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceCostBound {
    /// The bound value (same unit as distances).
    pub bound: f64,
    /// The class `k` whose window argument produced the bound.
    pub achieving_class: usize,
    /// The number of complete `2^{K−k}`-windows that fit in the horizon
    /// for the achieving class.
    pub windows: u64,
}

/// Computes the Lemma 3 lower bound using the exact `q`-rooted MSF weight
/// as the (certified) stand-in for `w(D*_k)`.
///
/// For each class `k`, the horizon is partitioned into windows of length
/// `2^{k+1} τ_1`; in every complete window each sensor of `V_0 ∪ … ∪ V_k`
/// must be charged at least once (its maximum cycle is `< 2^{k+1} τ_1`),
/// so every window costs at least the optimal `q`-rooted cover of that
/// set, which the MSF weight lower-bounds.
///
/// Returns a zero bound when no class fits even one complete window.
///
/// ```
/// use perpetuum_core::bounds::lemma3_lower_bound;
/// use perpetuum_core::mtd::{plan_min_total_distance, MtdConfig};
/// use perpetuum_core::network::{Instance, Network};
/// use perpetuum_geom::Point2;
///
/// let network = Network::new(
///     vec![Point2::new(10.0, 0.0), Point2::new(20.0, 0.0)],
///     vec![Point2::new(0.0, 0.0)],
/// );
/// let instance = Instance::new(network, vec![2.0, 4.0], 32.0);
/// let bound = lemma3_lower_bound(&instance);
/// let cost = plan_min_total_distance(&instance, &MtdConfig::default()).service_cost();
/// assert!(bound.bound > 0.0);
/// assert!(cost >= bound.bound); // certified: no plan can beat the bound
/// ```
pub fn lemma3_lower_bound(instance: &Instance) -> ServiceCostBound {
    let n = instance.n();
    if n == 0 {
        return ServiceCostBound { bound: 0.0, achieving_class: 0, windows: 0 };
    }
    let partition = partition_cycles(instance.cycles());
    let network = instance.network();
    let depots = network.depot_nodes();

    let mut best = ServiceCostBound { bound: 0.0, achieving_class: 0, windows: 0 };
    for k in 0..=partition.k_max() {
        let window = 2.0 * partition.tau1 * (1u64 << k) as f64;
        let windows = (instance.horizon() / window).floor() as u64;
        if windows == 0 {
            continue;
        }
        let terminals = partition.cumulative(k);
        let msf = q_rooted_msf_src(&network.dist_source(), &terminals, &depots);
        let bound = windows as f64 * msf.weight;
        if bound > best.bound {
            best = ServiceCostBound { bound, achieving_class: k, windows };
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::{plan_greedy_fixed, GreedyConfig};
    use crate::mtd::{plan_min_total_distance, MtdConfig};
    use crate::naive::plan_per_sensor_cadence;
    use crate::network::Network;
    use perpetuum_geom::Point2;
    use rand::{Rng, SeedableRng};

    fn random_instance(n: usize, seed: u64, horizon: f64) -> Instance {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let sensors: Vec<Point2> = (0..n)
            .map(|_| Point2::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0)))
            .collect();
        let depots = vec![Point2::new(500.0, 500.0), Point2::new(0.0, 0.0)];
        let cycles: Vec<f64> = (0..n).map(|_| rng.gen_range(1.0..50.0)).collect();
        Instance::new(Network::new(sensors, depots), cycles, horizon)
    }

    #[test]
    fn bound_is_positive_and_below_every_feasible_plan() {
        for seed in 0..6u64 {
            let inst = random_instance(20, seed, 200.0);
            let lb = lemma3_lower_bound(&inst);
            assert!(lb.bound > 0.0, "seed {seed}");
            // Every feasible plan we can build costs at least the bound.
            for cost in [
                plan_min_total_distance(&inst, &MtdConfig::default()).service_cost(),
                plan_greedy_fixed(&inst, &GreedyConfig::paper_default(1.0)).service_cost(),
                plan_per_sensor_cadence(&inst).service_cost(),
            ] {
                assert!(
                    cost + 1e-6 >= lb.bound,
                    "seed {seed}: plan cost {cost} under the lower bound {}",
                    lb.bound
                );
            }
        }
    }

    #[test]
    fn empirical_ratio_well_under_worst_case() {
        // The paper's guarantee is 2(K+2); random instances should come in
        // far below it.
        for seed in 10..14u64 {
            let inst = random_instance(30, seed, 500.0);
            let lb = lemma3_lower_bound(&inst);
            let cost = plan_min_total_distance(&inst, &MtdConfig::default()).service_cost();
            let partition = partition_cycles(inst.cycles());
            let worst_case = 2.0 * (partition.k_max() as f64 + 2.0);
            let ratio = cost / lb.bound;
            assert!(
                ratio <= worst_case,
                "seed {seed}: empirical ratio {ratio} above the guarantee {worst_case}"
            );
        }
    }

    #[test]
    fn short_horizon_gives_zero_bound() {
        // Horizon shorter than the smallest window: no charging is forced.
        let inst = random_instance(10, 3, 1.5); // windows need ≥ 2·τ_1 = 2
        let lb = lemma3_lower_bound(&inst);
        assert_eq!(lb.bound, 0.0);
        assert_eq!(lb.windows, 0);
    }

    #[test]
    fn empty_instance() {
        let net = Network::new(vec![], vec![Point2::ORIGIN]);
        let inst = Instance::new(net, vec![], 10.0);
        assert_eq!(lemma3_lower_bound(&inst).bound, 0.0);
    }

    #[test]
    fn uniform_cycles_bound_matches_window_count() {
        // All cycles 2: single class, window 4, horizon 16 → 4 windows.
        let sensors = vec![Point2::new(10.0, 0.0), Point2::new(20.0, 0.0)];
        let depots = vec![Point2::ORIGIN];
        let inst = Instance::new(Network::new(sensors, depots), vec![2.0, 2.0], 16.0);
        let lb = lemma3_lower_bound(&inst);
        assert_eq!(lb.windows, 4);
        assert_eq!(lb.achieving_class, 0);
        // MSF weight: 0→10→20 chain = 20.
        assert!((lb.bound - 4.0 * 20.0).abs() < 1e-9);
    }
}
