//! The anytime refiner: seeded local search over a family of rooted tours.
//!
//! A *tour family* is what one paper dispatch drives: `q` closed tours,
//! each starting at its charger's depot, covering pairwise-disjoint
//! sensors. The refiner improves the family's total cycle length with
//! four move kernels, never touching *which* sensors the family covers:
//!
//! * **2-opt** — reverse a segment of one tour, uncrossing two edges,
//! * **Or-opt** — relocate a segment of 1–3 consecutive sensors within
//!   its tour (forward orientation),
//! * **relocate** — move one sensor to a cheaper position in *another*
//!   tour of the family (sensor-to-charger reassignment),
//! * **swap** — exchange two sensors between two tours.
//!
//! Every kernel is strict-improvement only (`delta < -eps`, the same
//! `1e-12` slack the constructive polish uses), so the current state *is*
//! the incumbent: [`Refiner::best`] can be taken at any point and is
//! never worse than the input. Depots are pinned — position 0 of every
//! tour is untouchable — so feasibility of the surrounding schedule
//! (which depends only on set membership and dispatch times) is
//! preserved by construction.
//!
//! Move scanning is candidate-limited when point positions are known
//! ([`Refiner::set_candidates`] builds k-NN lists via the same kd-tree
//! the constructive polish uses), so a pass is `O(n·k)` and the dense
//! `n²` matrix is never required. Work is metered by [`Budget`]: one
//! step = one candidate-move evaluation, making iteration-bounded runs
//! byte-reproducible for a fixed `(seed, budget)`.

use crate::budget::{Budget, Meter};
use perpetuum_geom::Point2;
use perpetuum_graph::tsp_heur::knn_candidates;
use perpetuum_graph::{Metric, Tour};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Strict-improvement slack shared by all kernels (matches `tsp_heur`).
pub const IMPROVE_EPS: f64 = 1e-12;

/// Default k-NN candidate-list width.
pub const DEFAULT_CANDIDATES: usize = 10;

/// Knobs for a [`Refiner`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefineParams {
    /// RNG seed driving sweep orders. Same seed + same step budget ⇒
    /// byte-identical output.
    pub seed: u64,
    /// Strict-improvement slack: a move must gain more than this.
    pub eps: f64,
}

impl RefineParams {
    /// Defaults with an explicit seed.
    pub fn seeded(seed: u64) -> Self {
        Self { seed, eps: IMPROVE_EPS }
    }
}

impl Default for RefineParams {
    fn default() -> Self {
        Self::seeded(0)
    }
}

/// What one [`Refiner::run`] call did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefineOutcome {
    /// Total cycle-length reduction achieved by this call (≥ 0).
    pub gain: f64,
    /// Candidate-move evaluations consumed.
    pub steps: u64,
    /// Full sweeps over the family completed or started.
    pub passes: u64,
    /// Moves accepted.
    pub accepted: u64,
    /// True when the family is locally optimal for the move set — a
    /// whole pass found nothing and budget remained.
    pub converged: bool,
}

/// Budgeted anytime local search over one rooted tour family.
///
/// The refiner owns its working copy of the tours; the caller seeds it
/// with [`Refiner::new`], optionally attaches candidate lists, calls
/// [`Refiner::run`] one or more times (budgets compose), and takes the
/// incumbent with [`Refiner::best`] / [`Refiner::into_tours`] whenever
/// it wants to stop.
#[derive(Debug)]
pub struct Refiner<M: Metric> {
    dist: M,
    tours: Vec<Vec<usize>>,
    lens: Vec<f64>,
    /// `home[v] = (tour, position)` for every node currently in a tour;
    /// `usize::MAX` marks absent ids.
    home: Vec<(usize, usize)>,
    /// k-NN candidate lists by global node id; empty ⇒ exhaustive scans.
    cand: Vec<Vec<usize>>,
    rng: StdRng,
    eps: f64,
    accepted: u64,
}

const NOWHERE: (usize, usize) = (usize::MAX, usize::MAX);

fn cycle_len<M: Metric>(dist: &M, nodes: &[usize]) -> f64 {
    if nodes.len() < 2 {
        return 0.0;
    }
    let mut total: f64 = nodes.windows(2).map(|w| dist.get(w[0], w[1])).sum();
    total += dist.get(nodes[nodes.len() - 1], nodes[0]);
    total
}

impl<M: Metric> Refiner<M> {
    /// Wrap a tour family. Every tour must be nonempty with its depot at
    /// position 0, node ids must be `< dist.len()`, and no node may
    /// appear twice across the family.
    ///
    /// # Panics
    /// On empty tours, out-of-range ids, or duplicated nodes — those are
    /// construction bugs upstream, not runtime conditions.
    pub fn new(tours: Vec<Vec<usize>>, dist: M, params: RefineParams) -> Self {
        let mut home = vec![NOWHERE; dist.len()];
        for (t, tour) in tours.iter().enumerate() {
            assert!(!tour.is_empty(), "tour {t} is empty (a depot at least is required)");
            for (i, &v) in tour.iter().enumerate() {
                assert!(v < dist.len(), "node {v} out of range (metric has {})", dist.len());
                assert!(home[v] == NOWHERE, "node {v} appears twice in the family");
                home[v] = (t, i);
            }
        }
        let lens = tours.iter().map(|t| cycle_len(&dist, t)).collect();
        Self {
            tours,
            lens,
            home,
            cand: Vec::new(),
            rng: StdRng::seed_from_u64(params.seed),
            eps: params.eps,
            accepted: 0,
            dist,
        }
    }

    /// Attach k-NN candidate lists built from node positions (`points`
    /// indexed by global node id, same convention as `DistSource::Points`).
    /// Restricts every kernel's scan to the `k` nearest family members of
    /// each node, turning a pass into `O(n·k)` work.
    pub fn set_candidates(&mut self, points: &[Point2], k: usize) {
        let nodes: Vec<usize> = self.tours.iter().flat_map(|t| t.iter().copied()).collect();
        self.cand = knn_candidates(points, &nodes, k);
    }

    /// Current total cycle length of the family (the incumbent cost).
    pub fn cost(&self) -> f64 {
        self.lens.iter().sum()
    }

    /// Current per-tour cycle lengths.
    pub fn tour_lengths(&self) -> &[f64] {
        &self.lens
    }

    /// Raw node lists of the incumbent (depot first in each).
    pub fn tour_nodes(&self) -> &[Vec<usize>] {
        &self.tours
    }

    /// Snapshot the incumbent as closed [`Tour`]s.
    pub fn best(&self) -> Vec<Tour> {
        self.tours.iter().map(|t| Tour::new(t.clone())).collect()
    }

    /// Consume the refiner, yielding the incumbent tours.
    pub fn into_tours(self) -> Vec<Tour> {
        self.tours.into_iter().map(Tour::new).collect()
    }

    /// Refine under `budget`. May be called repeatedly; each call picks
    /// up where the previous stopped (the RNG stream continues).
    pub fn run(&mut self, budget: &Budget) -> RefineOutcome {
        let before = self.cost();
        let accepted_before = self.accepted;
        let mut meter = budget.meter();
        let mut passes = 0u64;
        let mut converged = false;
        while !meter.exhausted() {
            passes += 1;
            let gained = self.pass(&mut meter);
            if gained <= self.eps {
                // A full uninterrupted sweep found nothing: local optimum.
                converged = !meter.exhausted();
                break;
            }
        }
        RefineOutcome {
            gain: before - self.cost(),
            steps: meter.used(),
            passes,
            accepted: self.accepted - accepted_before,
            converged,
        }
    }

    // --- sweep machinery ------------------------------------------------

    #[inline]
    fn d(&self, a: usize, b: usize) -> f64 {
        self.dist.get(a, b)
    }

    fn reindex(&mut self, t: usize) {
        for i in 0..self.tours[t].len() {
            let v = self.tours[t][i];
            self.home[v] = (t, i);
        }
    }

    fn shuffle(&mut self, xs: &mut [usize]) {
        for i in (1..xs.len()).rev() {
            let j = self.rng.gen_range(0..i + 1);
            xs.swap(i, j);
        }
    }

    /// One full sweep: 2-opt and Or-opt over every tour, then the
    /// cross-tour relocate/swap scan. Returns the total gain.
    fn pass(&mut self, meter: &mut Meter) -> f64 {
        let mut order: Vec<usize> = (0..self.tours.len()).collect();
        self.shuffle(&mut order);
        let mut gain = 0.0;
        for &t in &order {
            gain += self.two_opt_sweep(t, meter);
            if meter.exhausted() {
                return gain;
            }
        }
        for &t in &order {
            gain += self.or_opt_sweep(t, meter);
            if meter.exhausted() {
                return gain;
            }
        }
        gain + self.cross_sweep(meter)
    }

    /// Candidate 2-opt with first-improvement restarts on one tour.
    fn two_opt_sweep(&mut self, t: usize, meter: &mut Meter) -> f64 {
        let mut gain = 0.0;
        'restart: loop {
            let m = self.tours[t].len();
            if m < 4 {
                return gain;
            }
            for i in 0..m - 1 {
                let a = self.tours[t][i];
                let b = self.tours[t][i + 1];
                let n_cand = if self.cand.is_empty() { m } else { self.cand[a].len() };
                for ci in 0..n_cand {
                    // Second edge (c, next(c)) at position j > i + 1.
                    let j = if self.cand.is_empty() {
                        ci
                    } else {
                        let c = self.cand[a][ci];
                        let (tc, jc) = self.home[c];
                        if tc != t {
                            continue;
                        }
                        jc
                    };
                    if j <= i + 1 || j >= m {
                        continue;
                    }
                    if !meter.spend() {
                        return gain;
                    }
                    let c = self.tours[t][j];
                    let nxt = self.tours[t][(j + 1) % m];
                    let delta = self.d(a, c) + self.d(b, nxt) - self.d(a, b) - self.d(c, nxt);
                    if delta < -self.eps {
                        self.tours[t][i + 1..=j].reverse();
                        self.lens[t] += delta;
                        for p in i + 1..=j {
                            let v = self.tours[t][p];
                            self.home[v] = (t, p);
                        }
                        self.accepted += 1;
                        gain -= delta;
                        continue 'restart;
                    }
                }
            }
            // Scanned every edge without an accept: tour is 2-opt clean.
            return gain;
        }
    }

    /// Or-opt: relocate segments of 1–3 sensors within one tour.
    fn or_opt_sweep(&mut self, t: usize, meter: &mut Meter) -> f64 {
        let mut gain = 0.0;
        'restart: loop {
            let m = self.tours[t].len();
            if m < 4 {
                return gain;
            }
            for seg in 1..=3usize.min(m - 2) {
                for s in 1..m - seg + 1 {
                    let prev = self.tours[t][s - 1];
                    let head = self.tours[t][s];
                    let tail = self.tours[t][s + seg - 1];
                    let next = self.tours[t][(s + seg) % m];
                    let removal = self.d(prev, head) + self.d(tail, next) - self.d(prev, next);
                    let n_cand = if self.cand.is_empty() { m } else { self.cand[head].len() };
                    for ci in 0..n_cand {
                        let j = if self.cand.is_empty() {
                            ci
                        } else {
                            let x = self.cand[head][ci];
                            let (tx, jx) = self.home[x];
                            if tx != t {
                                continue;
                            }
                            jx
                        };
                        // Insert after position j: skip the segment itself
                        // and the no-op position just before it.
                        if j + 1 >= s && j < s + seg {
                            continue;
                        }
                        if j >= m {
                            continue;
                        }
                        if !meter.spend() {
                            return gain;
                        }
                        let x = self.tours[t][j];
                        let y = self.tours[t][(j + 1) % m];
                        let delta = self.d(x, head) + self.d(tail, y) - self.d(x, y) - removal;
                        if delta < -self.eps {
                            let moved: Vec<usize> = self.tours[t].drain(s..s + seg).collect();
                            let at = if j < s { j + 1 } else { j + 1 - seg };
                            for (k, &v) in moved.iter().enumerate() {
                                self.tours[t].insert(at + k, v);
                            }
                            self.lens[t] += delta;
                            self.reindex(t);
                            self.accepted += 1;
                            gain -= delta;
                            continue 'restart;
                        }
                    }
                }
            }
            // No segment found a cheaper slot: tour is Or-opt clean.
            return gain;
        }
    }

    /// Cross-tour scan: for every sensor (shuffled order), try the best
    /// candidate relocate into another tour, else the best candidate swap.
    fn cross_sweep(&mut self, meter: &mut Meter) -> f64 {
        if self.tours.len() < 2 {
            return 0.0;
        }
        let mut sensors: Vec<usize> =
            self.tours.iter().flat_map(|t| t.iter().skip(1).copied()).collect();
        self.shuffle(&mut sensors);
        let mut gain = 0.0;
        for &v in &sensors {
            if meter.exhausted() {
                return gain;
            }
            gain += self.cross_moves_for(v, meter);
        }
        gain
    }

    /// Candidate node ids to pair `v` with in other tours.
    fn cross_targets(&self, v: usize, own: usize) -> Vec<usize> {
        if self.cand.is_empty() {
            self.tours
                .iter()
                .enumerate()
                .filter(|&(t, _)| t != own)
                .flat_map(|(_, t)| t.iter().copied())
                .collect()
        } else {
            self.cand[v].clone()
        }
    }

    fn cross_moves_for(&mut self, v: usize, meter: &mut Meter) -> f64 {
        let (a, i) = self.home[v];
        let m_a = self.tours[a].len();
        let prev = self.tours[a][i - 1];
        let next = self.tours[a][(i + 1) % m_a];
        let removal = self.d(prev, v) + self.d(v, next) - self.d(prev, next);
        let targets = self.cross_targets(v, a);

        // Best relocation of v after some candidate c in another tour.
        let mut best_rel: Option<(f64, usize, usize)> = None; // (delta, tour, pos)
        for &c in &targets {
            let (b, j) = self.home[c];
            if b == a || b == usize::MAX {
                continue;
            }
            if !meter.spend() {
                break;
            }
            let y = self.tours[b][(j + 1) % self.tours[b].len()];
            let delta = self.d(c, v) + self.d(v, y) - self.d(c, y) - removal;
            if delta < best_rel.map_or(-self.eps, |(d, _, _)| d) {
                best_rel = Some((delta, b, j));
            }
        }
        if let Some((delta, b, j)) = best_rel {
            self.tours[a].remove(i);
            self.tours[b].insert(j + 1, v);
            self.lens[a] -= removal;
            self.lens[b] += delta + removal;
            self.home[v] = NOWHERE;
            self.reindex(a);
            self.reindex(b);
            self.accepted += 1;
            return -delta;
        }
        if meter.exhausted() {
            return 0.0;
        }

        // Best swap of v with a candidate sensor of another tour.
        let mut best_swap: Option<(f64, f64, usize, usize)> = None; // (total, delta_a, tour, pos)
        for &w in &targets {
            let (b, j) = self.home[w];
            if b == a || b == usize::MAX || j == 0 {
                continue; // same tour, absent, or a depot — depots are pinned
            }
            if !meter.spend() {
                break;
            }
            let m_b = self.tours[b].len();
            let pw = self.tours[b][j - 1];
            let nw = self.tours[b][(j + 1) % m_b];
            if pw == v || nw == v {
                continue; // unreachable across tours, cheap to keep explicit
            }
            let delta_a = self.d(prev, w) + self.d(w, next) - self.d(prev, v) - self.d(v, next);
            let delta_b = self.d(pw, v) + self.d(v, nw) - self.d(pw, w) - self.d(w, nw);
            let total = delta_a + delta_b;
            if total < best_swap.map_or(-self.eps, |(d, _, _, _)| d) {
                best_swap = Some((total, delta_a, b, j));
            }
        }
        if let Some((total, delta_a, b, j)) = best_swap {
            let w = self.tours[b][j];
            self.tours[a][i] = w;
            self.tours[b][j] = v;
            self.lens[a] += delta_a;
            self.lens[b] += total - delta_a;
            self.home[w] = (a, i);
            self.home[v] = (b, j);
            self.accepted += 1;
            return -total;
        }
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perpetuum_graph::DistMatrix;

    fn square() -> Vec<Point2> {
        vec![
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(1.0, 1.0),
            Point2::new(0.0, 1.0),
        ]
    }

    #[test]
    fn two_opt_uncrosses_the_square() {
        let pts = square();
        let dist = DistMatrix::from_points(&pts);
        // 0-2-1-3 crosses both diagonals: cost 2 + 2·√2 instead of 4.
        let mut r = Refiner::new(vec![vec![0, 2, 1, 3]], &dist, RefineParams::default());
        let before = r.cost();
        let out = r.run(&Budget::steps(10_000));
        assert!(out.converged);
        assert!(out.gain > 0.0);
        assert!((r.cost() - 4.0).abs() < 1e-9, "got {}", r.cost());
        assert!((before - out.gain - r.cost()).abs() < 1e-9);
    }

    #[test]
    fn relocate_moves_sensor_to_its_own_depot() {
        // Depots 0 and 1 far apart; sensor 2 sits on depot 1 but is
        // toured from depot 0. Relocation should hand it over.
        let pts = vec![Point2::new(0.0, 0.0), Point2::new(10.0, 0.0), Point2::new(10.0, 0.5)];
        let dist = DistMatrix::from_points(&pts);
        let mut r = Refiner::new(vec![vec![0, 2], vec![1]], &dist, RefineParams::default());
        let out = r.run(&Budget::steps(10_000));
        assert!(out.gain > 0.0);
        assert_eq!(r.tour_nodes()[0], vec![0]);
        assert_eq!(r.tour_nodes()[1], vec![1, 2]);
        assert!((r.cost() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn swap_exchanges_mismatched_sensors() {
        // Two depots, each touring the sensor next to the *other* depot.
        let pts = vec![
            Point2::new(0.0, 0.0),  // depot A
            Point2::new(10.0, 0.0), // depot B
            Point2::new(10.0, 1.0), // near B, toured by A
            Point2::new(0.0, 1.0),  // near A, toured by B
        ];
        let dist = DistMatrix::from_points(&pts);
        let mut r = Refiner::new(vec![vec![0, 2], vec![1, 3]], &dist, RefineParams::default());
        let out = r.run(&Budget::steps(10_000));
        assert!(out.gain > 0.0);
        assert_eq!(r.tour_nodes()[0], vec![0, 3]);
        assert_eq!(r.tour_nodes()[1], vec![1, 2]);
    }

    #[test]
    fn zero_budget_changes_nothing() {
        let pts = square();
        let dist = DistMatrix::from_points(&pts);
        let mut r = Refiner::new(vec![vec![0, 2, 1, 3]], &dist, RefineParams::default());
        let before = r.cost();
        let out = r.run(&Budget::steps(0));
        assert_eq!(out.steps, 0);
        assert_eq!(out.accepted, 0);
        assert_eq!(r.cost(), before);
        assert_eq!(r.tour_nodes()[0], vec![0, 2, 1, 3]);
    }

    #[test]
    fn split_budgets_keep_improving_monotonically() {
        let pts: Vec<Point2> = (0..32)
            .map(|i| {
                let a = i as f64 * 0.39;
                Point2::new(50.0 + 40.0 * a.cos(), 50.0 + 40.0 * a.sin())
            })
            .collect();
        let dist = DistMatrix::from_points(&pts);
        let nodes: Vec<usize> = (0..32).collect();
        let mut r = Refiner::new(vec![nodes], &dist, RefineParams::seeded(7));
        let mut last = r.cost();
        for _ in 0..20 {
            r.run(&Budget::steps(50));
            assert!(r.cost() <= last + 1e-12);
            last = r.cost();
        }
    }

    #[test]
    fn lengths_stay_consistent_with_recomputation() {
        let pts: Vec<Point2> =
            (0..40).map(|i| Point2::new((i * 37 % 100) as f64, (i * 61 % 100) as f64)).collect();
        let dist = DistMatrix::from_points(&pts);
        let tours = vec![(0..20).collect::<Vec<_>>(), (20..40).collect::<Vec<_>>()];
        let mut r = Refiner::new(tours, &dist, RefineParams::seeded(3));
        r.run(&Budget::steps(200_000));
        for (t, nodes) in r.tour_nodes().iter().enumerate() {
            let exact = cycle_len(&&dist, nodes);
            assert!(
                (r.tour_lengths()[t] - exact).abs() < 1e-6,
                "tour {t}: tracked {} vs exact {exact}",
                r.tour_lengths()[t]
            );
        }
    }

    #[test]
    fn candidate_lists_restrict_but_still_improve() {
        let pts: Vec<Point2> =
            (0..64).map(|i| Point2::new((i * 17 % 80) as f64, (i * 29 % 80) as f64)).collect();
        let dist = DistMatrix::from_points(&pts);
        let tours = vec![(0..32).collect::<Vec<_>>(), (32..64).collect::<Vec<_>>()];
        let mut r = Refiner::new(tours, &dist, RefineParams::seeded(11));
        r.set_candidates(&pts, 8);
        let before = r.cost();
        let out = r.run(&Budget::steps(500_000));
        assert!(out.gain > 0.0);
        assert!(r.cost() < before);
    }
}
