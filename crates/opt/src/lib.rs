//! `perpetuum-opt` — budgeted anytime refinement of charging tours.
//!
//! The paper's Algorithm 2 builds each dispatch's tours constructively
//! (tree doubling + shortcut, a 2-approximation). This crate is the
//! missing improvement layer: a deterministic, seeded local search that
//! takes a family of depot-rooted tours and spends an explicit
//! [`Budget`] shrinking its total cycle length — intra-tour 2-opt and
//! Or-opt plus cross-tour relocate/swap of sensors between chargers —
//! while provably never changing *which* sensors the family serves.
//!
//! The crate is deliberately low-level: it knows tours and metrics
//! ([`perpetuum_graph::Metric`]), not schedules. Adapters that refine
//! whole `TourSet`s / `ScheduleSeries` live in `perpetuum_core::refine`,
//! which keeps the dependency arrow pointing the same way as the rest of
//! the stack (core → graph).
//!
//! Properties the test-suite pins:
//! * accepted moves strictly decrease cost (`delta < -1e-12`), so the
//!   working state is always the best seen — [`Refiner::best`] is an
//!   anytime snapshot;
//! * the union of nodes per family is invariant and depots stay at
//!   position 0 of their tours;
//! * a run is a pure function of `(input, seed, step budget)` —
//!   byte-identical tours on every machine.

#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod budget;
pub mod refiner;

pub use budget::Budget;
pub use refiner::{RefineOutcome, RefineParams, Refiner, DEFAULT_CANDIDATES, IMPROVE_EPS};
