//! Refinement budgets: how much work an anytime pass may spend.
//!
//! The primary unit is the **step** — one candidate-move *evaluation*
//! (not one accepted move), counted identically on every machine. A run
//! bounded only by steps is therefore fully deterministic: the same
//! `(seed, Budget::steps(k))` pair always stops at the same evaluation
//! and yields byte-identical tours. An optional wall-clock cap can be
//! layered on top for latency-sensitive callers (the serve background
//! workers); the cap can only *truncate* a run earlier, so it trades the
//! cross-machine reproducibility of the exact stopping point for a hard
//! latency bound while every intermediate incumbent stays feasible.

use std::time::{Duration, Instant};

/// Work allowance for one [`Refiner::run`](crate::Refiner::run) call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    steps: u64,
    time_cap: Option<Duration>,
}

impl Budget {
    /// A deterministic budget of `steps` candidate-move evaluations.
    pub fn steps(steps: u64) -> Self {
        Self { steps, time_cap: None }
    }

    /// Add a wall-clock ceiling: the run stops at the earlier of the step
    /// limit and `cap`. Time-capped runs are *not* byte-reproducible
    /// across machines (the clock decides the stopping step); use a pure
    /// step budget when determinism matters.
    pub fn with_time_cap(mut self, cap: Duration) -> Self {
        self.time_cap = Some(cap);
        self
    }

    /// The step limit.
    pub fn step_limit(&self) -> u64 {
        self.steps
    }

    /// The wall-clock ceiling, when one is set.
    pub fn time_cap(&self) -> Option<Duration> {
        self.time_cap
    }

    pub(crate) fn meter(&self) -> Meter {
        Meter {
            used: 0,
            limit: self.steps,
            deadline: self.time_cap.map(|c| Instant::now() + c),
            out: self.steps == 0,
        }
    }
}

/// Running countdown for one `run` call. Spending is deterministic; the
/// deadline is consulted only every [`Meter::TIME_STRIDE`] steps so the
/// hot loop stays clock-free.
#[derive(Debug)]
pub(crate) struct Meter {
    used: u64,
    limit: u64,
    deadline: Option<Instant>,
    out: bool,
}

impl Meter {
    /// Clock-poll stride: a power of two so the check compiles to a mask.
    const TIME_STRIDE: u64 = 64;

    /// Consume one step. Returns `false` once the budget is exhausted —
    /// the caller must stop evaluating moves (already-accepted moves
    /// stand; the incumbent is always consistent).
    pub(crate) fn spend(&mut self) -> bool {
        if self.out {
            return false;
        }
        self.used += 1;
        if self.used >= self.limit {
            self.out = true;
        } else if self.used.is_multiple_of(Self::TIME_STRIDE) {
            if let Some(d) = self.deadline {
                if Instant::now() >= d {
                    self.out = true;
                }
            }
        }
        !self.out
    }

    /// True when no further work may be done.
    pub(crate) fn exhausted(&self) -> bool {
        self.out
    }

    /// Steps consumed so far.
    pub(crate) fn used(&self) -> u64 {
        self.used
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_budget_counts_down() {
        let mut m = Budget::steps(3).meter();
        assert!(m.spend());
        assert!(m.spend());
        assert!(!m.spend()); // third step consumes the budget
        assert!(!m.spend());
        assert!(m.exhausted());
        assert_eq!(m.used(), 3);
    }

    #[test]
    fn zero_budget_is_exhausted_immediately() {
        let mut m = Budget::steps(0).meter();
        assert!(m.exhausted());
        assert!(!m.spend());
        assert_eq!(m.used(), 0);
    }

    #[test]
    fn expired_time_cap_stops_at_stride() {
        let mut m = Budget::steps(u64::MAX).with_time_cap(Duration::ZERO).meter();
        let mut taken = 0u64;
        while m.spend() {
            taken += 1;
            assert!(taken <= Meter::TIME_STRIDE, "deadline never consulted");
        }
        assert!(m.exhausted());
    }

    #[test]
    fn accessors_round_trip() {
        let b = Budget::steps(7).with_time_cap(Duration::from_millis(5));
        assert_eq!(b.step_limit(), 7);
        assert_eq!(b.time_cap(), Some(Duration::from_millis(5)));
        assert_eq!(Budget::steps(7).time_cap(), None);
    }
}
