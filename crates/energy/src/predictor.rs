//! The paper's lightweight residual-lifetime prediction (Section VI.A).
//!
//! Each sensor monitors its energy periodically and predicts its next-slot
//! consumption rate with an exponentially weighted moving average:
//!
//! ```text
//! ρ̂_i(t+1) = γ · ρ_i(t) + (1 − γ) · ρ̂_i(t),        0 < γ < 1
//! ```
//!
//! from which the estimated residual lifetime `l̂_i(t) = re_i(t) / ρ̂_i(t+1)`
//! and maximum charging cycle `τ̂_i(t) = B_i / ρ̂_i(t+1)` follow.

/// EWMA consumption-rate predictor for one sensor.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "std", derive(serde::Serialize, serde::Deserialize))]
pub struct EwmaPredictor {
    gamma: f64,
    rho_hat: f64,
}

impl EwmaPredictor {
    /// Default smoothing weight. The paper leaves `γ` unspecified; 0.5
    /// weights the latest observation and history equally and adapts within
    /// a couple of slots.
    pub const DEFAULT_GAMMA: f64 = 0.5;

    /// Creates a predictor initialised with the first observed rate.
    ///
    /// # Panics
    /// Panics unless `0 < gamma < 1` and `initial_rate > 0`.
    pub fn new(gamma: f64, initial_rate: f64) -> Self {
        assert!(gamma > 0.0 && gamma < 1.0, "gamma must be in (0, 1), got {gamma}");
        assert!(
            initial_rate > 0.0 && initial_rate.is_finite(),
            "initial rate must be positive and finite, got {initial_rate}"
        );
        Self { gamma, rho_hat: initial_rate }
    }

    /// Predictor with the default `γ`.
    pub fn with_default_gamma(initial_rate: f64) -> Self {
        Self::new(Self::DEFAULT_GAMMA, initial_rate)
    }

    /// Reconstructs a predictor from previously captured state — the exact
    /// `ρ̂` an identical predictor holds after some observation sequence.
    /// Unlike [`EwmaPredictor::new`], the state may be zero or negative
    /// (a run of idle/harvesting observations can drive `ρ̂` through zero);
    /// the derived lifetimes already saturate at `∞` there.
    ///
    /// # Panics
    /// Panics unless `0 < gamma < 1` and `rho_hat` is finite.
    pub fn from_state(gamma: f64, rho_hat: f64) -> Self {
        assert!(gamma > 0.0 && gamma < 1.0, "gamma must be in (0, 1), got {gamma}");
        assert!(rho_hat.is_finite(), "rho_hat must be finite, got {rho_hat}");
        Self { gamma, rho_hat }
    }

    /// The smoothing weight `γ` this predictor was built with.
    #[inline]
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Feeds the rate `rho` observed for the slot that just ended and
    /// returns the updated prediction for the next slot. Non-positive
    /// observations are admissible (an idle or energy-harvesting slot can
    /// report zero or even negative net drain); the derived lifetimes
    /// saturate at `∞` once the prediction itself drops to `≤ 0`.
    pub fn observe(&mut self, rho: f64) -> f64 {
        debug_assert!(rho.is_finite());
        self.rho_hat = self.gamma * rho + (1.0 - self.gamma) * self.rho_hat;
        self.rho_hat
    }

    /// Current predicted rate `ρ̂(t+1)`.
    #[inline]
    pub fn predicted_rate(&self) -> f64 {
        self.rho_hat
    }

    /// Predicted maximum charging cycle `τ̂ = B / ρ̂`, or `∞` when the
    /// predicted rate is non-positive (the battery never drains).
    #[inline]
    pub fn max_cycle(&self, capacity: f64) -> f64 {
        if self.rho_hat <= 0.0 {
            return f64::INFINITY;
        }
        capacity / self.rho_hat
    }

    /// Predicted residual lifetime `l̂ = re / ρ̂`, or `∞` when the predicted
    /// rate is non-positive (never `NaN`, even at `re = 0`).
    #[inline]
    pub fn residual_lifetime(&self, residual_energy: f64) -> f64 {
        if self.rho_hat <= 0.0 {
            return f64::INFINITY;
        }
        residual_energy / self.rho_hat
    }
}

/// Variation test used by the base station (Section VI.B): given the cycle
/// `tau_scheduled` a sensor is currently charged at and its newly estimated
/// maximum cycle `tau_new`, the previous schedulings remain *applicable and
/// efficient* iff `tau_scheduled ≤ tau_new < 2·tau_scheduled`. Outside that
/// band the base station must recompute (either infeasible — the sensor
/// would die — or wasteful — it could be charged half as often).
#[inline]
pub fn schedule_still_applicable(tau_scheduled: f64, tau_new: f64) -> bool {
    tau_scheduled <= tau_new && tau_new < 2.0 * tau_scheduled
}

/// Double-exponential (Holt) smoothing: tracks both a level and a trend,
/// so steadily drifting consumption (battery aging, seasonally rising
/// sampling rates) is extrapolated instead of lagged. An extension beyond
/// the paper's trend-blind EWMA; `HoltPredictor` with `beta = 0`
/// degenerates to it.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "std", derive(serde::Serialize, serde::Deserialize))]
pub struct HoltPredictor {
    alpha: f64,
    beta: f64,
    level: f64,
    trend: f64,
}

impl HoltPredictor {
    /// Creates a predictor initialised at `initial_rate` with zero trend.
    ///
    /// # Panics
    /// Panics unless `0 < alpha < 1` and `0 ≤ beta < 1` and the initial
    /// rate is positive.
    pub fn new(alpha: f64, beta: f64, initial_rate: f64) -> Self {
        assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1)");
        assert!((0.0..1.0).contains(&beta), "beta must be in [0, 1)");
        assert!(initial_rate > 0.0 && initial_rate.is_finite());
        Self { alpha, beta, level: initial_rate, trend: 0.0 }
    }

    /// Feeds an observed rate; returns the one-step-ahead prediction.
    /// Non-positive observations are admissible, like
    /// [`EwmaPredictor::observe`].
    pub fn observe(&mut self, rho: f64) -> f64 {
        debug_assert!(rho.is_finite());
        let prev_level = self.level;
        self.level = self.alpha * rho + (1.0 - self.alpha) * (self.level + self.trend);
        self.trend = self.beta * (self.level - prev_level) + (1.0 - self.beta) * self.trend;
        self.predicted_rate()
    }

    /// One-step-ahead rate prediction `level + trend`, floored at a tiny
    /// positive value so it can be fed back into rate formulas directly.
    pub fn predicted_rate(&self) -> f64 {
        (self.level + self.trend).max(f64::MIN_POSITIVE)
    }

    /// Predicted maximum charging cycle `B / ρ̂`, or `∞` when the raw
    /// (unfloored) prediction `level + trend` has gone non-positive after a
    /// negative-trend observation — a battery that never drains, not a
    /// huge-but-finite `B / MIN_POSITIVE` artifact.
    pub fn max_cycle(&self, capacity: f64) -> f64 {
        if self.level + self.trend <= 0.0 {
            return f64::INFINITY;
        }
        capacity / self.predicted_rate()
    }

    /// Predicted residual lifetime `re / ρ̂`, with the same `∞` saturation
    /// as [`HoltPredictor::max_cycle`] (never `NaN`, even at `re = 0`).
    pub fn residual_lifetime(&self, residual_energy: f64) -> f64 {
        if self.level + self.trend <= 0.0 {
            return f64::INFINITY;
        }
        residual_energy / self.predicted_rate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_matches_formula() {
        let mut p = EwmaPredictor::new(0.25, 1.0);
        let updated = p.observe(2.0);
        assert!((updated - (0.25 * 2.0 + 0.75 * 1.0)).abs() < 1e-12);
        assert_eq!(p.predicted_rate(), updated);
    }

    #[test]
    fn converges_to_constant_signal() {
        let mut p = EwmaPredictor::with_default_gamma(10.0);
        for _ in 0..60 {
            p.observe(2.0);
        }
        assert!((p.predicted_rate() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn tracks_step_change_geometrically() {
        let mut p = EwmaPredictor::new(0.5, 1.0);
        p.observe(3.0); // 2.0
        p.observe(3.0); // 2.5
        p.observe(3.0); // 2.75
        assert!((p.predicted_rate() - 2.75).abs() < 1e-12);
    }

    #[test]
    fn derived_quantities() {
        let p = EwmaPredictor::new(0.5, 0.2);
        assert!((p.max_cycle(1.0) - 5.0).abs() < 1e-12);
        assert!((p.residual_lifetime(0.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn applicability_band() {
        assert!(schedule_still_applicable(4.0, 4.0));
        assert!(schedule_still_applicable(4.0, 7.9));
        assert!(!schedule_still_applicable(4.0, 8.0)); // could halve frequency
        assert!(!schedule_still_applicable(4.0, 3.9)); // would die
    }

    #[test]
    fn holt_tracks_linear_drift_better_than_ewma() {
        // Rate rising 1% per slot (battery aging seen from the rate side):
        // after a burn-in, Holt's one-step prediction error is far below
        // the EWMA's systematic lag.
        let mut ewma = EwmaPredictor::new(0.5, 1.0);
        let mut holt = HoltPredictor::new(0.5, 0.3, 1.0);
        let mut ewma_err = 0.0;
        let mut holt_err = 0.0;
        let mut rate = 1.0;
        for step in 0..200 {
            rate *= 1.01;
            if step >= 50 {
                ewma_err += (ewma.predicted_rate() - rate).abs();
                holt_err += (holt.predicted_rate() - rate).abs();
            }
            ewma.observe(rate);
            holt.observe(rate);
        }
        assert!(holt_err < ewma_err / 3.0, "holt {holt_err} should beat ewma {ewma_err} by 3x+");
    }

    #[test]
    fn holt_with_zero_beta_matches_ewma() {
        let mut ewma = EwmaPredictor::new(0.4, 2.0);
        let mut holt = HoltPredictor::new(0.4, 0.0, 2.0);
        for rho in [2.5, 1.8, 3.0, 2.2, 2.9] {
            let a = ewma.observe(rho);
            let b = holt.observe(rho);
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn holt_converges_on_constant_signal() {
        let mut holt = HoltPredictor::new(0.5, 0.3, 10.0);
        for _ in 0..100 {
            holt.observe(2.0);
        }
        assert!((holt.predicted_rate() - 2.0).abs() < 1e-6);
        assert!((holt.max_cycle(1.0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn holt_prediction_stays_positive() {
        // A falling rate with strong trend could extrapolate below zero;
        // the floor keeps cycle estimates finite.
        let mut holt = HoltPredictor::new(0.9, 0.9, 10.0);
        for step in 0..50 {
            holt.observe((10.0 - step as f64 * 0.2).max(0.01));
        }
        assert!(holt.predicted_rate() > 0.0);
    }

    #[test]
    fn ewma_non_positive_prediction_saturates_lifetimes_at_infinity() {
        // One negative observation cancels the history exactly: ρ̂ = 0.
        let mut p = EwmaPredictor::new(0.5, 1.0);
        p.observe(-1.0);
        assert_eq!(p.predicted_rate(), 0.0);
        assert_eq!(p.max_cycle(1.0), f64::INFINITY);
        assert_eq!(p.residual_lifetime(0.5), f64::INFINITY);
        // The 0/0 corner must be ∞, not NaN.
        assert_eq!(p.residual_lifetime(0.0), f64::INFINITY);
        // Push strictly below zero: still ∞, never negative lifetimes.
        p.observe(-1.0);
        assert!(p.predicted_rate() < 0.0);
        assert_eq!(p.max_cycle(1.0), f64::INFINITY);
        assert_eq!(p.residual_lifetime(0.5), f64::INFINITY);
        // Fresh positive observations recover a finite cycle.
        for _ in 0..20 {
            p.observe(2.0);
        }
        assert!((p.max_cycle(1.0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn ewma_boundary_exactly_zero_rate_observation() {
        // Zero observations decay ρ̂ geometrically but never through zero,
        // so lifetimes stay finite until the prediction actually crosses.
        let mut p = EwmaPredictor::new(0.5, 1.0);
        for _ in 0..50 {
            p.observe(0.0);
        }
        assert!(p.predicted_rate() > 0.0);
        assert!(p.max_cycle(1.0).is_finite());
    }

    #[test]
    fn holt_negative_trend_saturates_lifetimes_at_infinity() {
        // A crashing rate with aggressive trend tracking extrapolates the
        // raw level + trend below zero; the derived lifetimes must report
        // ∞ instead of the huge-but-finite B / MIN_POSITIVE artifact.
        let mut holt = HoltPredictor::new(0.9, 0.9, 10.0);
        holt.observe(0.1);
        holt.observe(0.001);
        assert!(holt.predicted_rate() > 0.0, "floored rate stays positive");
        assert_eq!(holt.max_cycle(1.0), f64::INFINITY);
        assert_eq!(holt.residual_lifetime(0.5), f64::INFINITY);
        assert_eq!(holt.residual_lifetime(0.0), f64::INFINITY);
        // Recovery: once observations rise again the cycle comes back down.
        for _ in 0..50 {
            holt.observe(2.0);
        }
        assert!((holt.max_cycle(1.0) - 0.5).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn holt_alpha_bounds() {
        HoltPredictor::new(1.0, 0.1, 1.0);
    }

    #[test]
    #[should_panic(expected = "gamma")]
    fn gamma_bounds_enforced() {
        EwmaPredictor::new(1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "initial rate")]
    fn initial_rate_must_be_positive() {
        EwmaPredictor::new(0.5, 0.0);
    }

    #[test]
    fn from_state_round_trips_observation_state() {
        let mut live = EwmaPredictor::new(0.5, 1.0);
        live.observe(2.0);
        live.observe(0.7);
        let restored = EwmaPredictor::from_state(live.gamma(), live.predicted_rate());
        assert_eq!(restored, live, "restored predictor is bit-identical");
        let mut a = live;
        let mut b = restored;
        assert_eq!(a.observe(1.3), b.observe(1.3), "and evolves identically");
    }

    #[test]
    fn from_state_admits_non_positive_state() {
        // A restored ρ̂ may have been driven to or below zero by idle
        // slots; lifetimes saturate exactly as on the live predictor.
        let p = EwmaPredictor::from_state(0.5, 0.0);
        assert_eq!(p.max_cycle(1.0), f64::INFINITY);
        let p = EwmaPredictor::from_state(0.5, -0.25);
        assert_eq!(p.residual_lifetime(0.5), f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn from_state_rejects_nan() {
        EwmaPredictor::from_state(0.5, f64::NAN);
    }
}
