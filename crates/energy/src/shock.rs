//! Consumption-rate shocks and drift (fault-injection hook).
//!
//! The paper's rate processes ([`crate::consumption`]) resample benignly at
//! slot boundaries. Real deployments also see *adverse* rate dynamics: a
//! sensor near a detected event suddenly samples at a multiple of its
//! nominal rate for a while (a **shock**), and ageing electronics drain a
//! little more every slot (**drift**). This module layers both on top of
//! any rate process: the simulator asks [`ShockState::apply`] to transform
//! the freshly resampled rate once per sensor per slot, drawing from a
//! dedicated fault RNG stream so that disabling faults leaves the nominal
//! streams untouched.
//!
//! The process is a per-sensor two-state machine: nominal, or shocked for
//! the next `shock_slots` slots (entered with probability `shock_prob` per
//! slot, rate multiplied by `shock_factor`). Drift multiplies every rate by
//! `(1 + drift)^slot`, compounding monotonically. Exactly one uniform draw
//! is consumed per `apply` call regardless of the machine's state, so the
//! fault stream stays aligned across sensors whatever sequence of shocks a
//! run sees.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the shock/drift layer (all per-slot).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RateShock {
    /// Probability of entering a shock at a slot boundary while nominal.
    #[serde(default)]
    pub shock_prob: f64,
    /// Rate multiplier while shocked (`> 1` worsens drain).
    #[serde(default)]
    pub shock_factor: f64,
    /// Shock duration in slots (a shock entered at slot `m` covers slots
    /// `m .. m + shock_slots`).
    #[serde(default)]
    pub shock_slots: u32,
    /// Per-slot multiplicative drift: every rate is additionally scaled by
    /// `(1 + drift)` each slot, compounding (0 disables).
    #[serde(default)]
    pub drift: f64,
}

impl RateShock {
    /// A pure shock process (no drift).
    pub fn shocks(shock_prob: f64, shock_factor: f64, shock_slots: u32) -> Self {
        Self { shock_prob, shock_factor, shock_slots, drift: 0.0 }
    }

    /// A pure drift process (no shocks).
    pub fn drift(drift: f64) -> Self {
        Self { shock_prob: 0.0, shock_factor: 1.0, shock_slots: 0, drift }
    }

    /// Checks the parameters are usable; returns a description of the
    /// first offending field otherwise.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.shock_prob) {
            return Err(format!("shock_prob {} outside [0, 1]", self.shock_prob));
        }
        if !self.shock_factor.is_finite() || self.shock_factor <= 0.0 {
            return Err(format!("shock_factor {} must be positive and finite", self.shock_factor));
        }
        if !self.drift.is_finite() || self.drift < 0.0 {
            return Err(format!("drift {} must be non-negative and finite", self.drift));
        }
        Ok(())
    }
}

/// Per-sensor shock-machine state.
#[derive(Debug, Clone, Default)]
pub struct ShockState {
    /// Slots the current shock still covers (including the one being
    /// entered); 0 means nominal.
    remaining: u32,
    /// Compounded drift multiplier, `(1 + drift)^slots_seen`.
    drift_mult: f64,
}

impl ShockState {
    /// Fresh state: nominal, no drift accumulated.
    pub fn new() -> Self {
        Self { remaining: 0, drift_mult: 1.0 }
    }

    /// True while a shock is active.
    pub fn is_shocked(&self) -> bool {
        self.remaining > 0
    }

    /// Transforms the freshly resampled `rate` for the next slot, advancing
    /// the machine. Consumes exactly one uniform draw from `rng` per call.
    pub fn apply<R: Rng + ?Sized>(&mut self, cfg: &RateShock, rate: f64, rng: &mut R) -> f64 {
        let u = rng.gen::<f64>();
        if self.remaining > 0 {
            self.remaining -= 1;
        } else if u < cfg.shock_prob && cfg.shock_slots > 0 {
            self.remaining = cfg.shock_slots - 1;
        } else {
            self.drift_mult *= 1.0 + cfg.drift;
            return rate * self.drift_mult;
        }
        self.drift_mult *= 1.0 + cfg.drift;
        rate * cfg.shock_factor * self.drift_mult
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn drift_compounds_per_slot() {
        let cfg = RateShock::drift(0.1);
        let mut st = ShockState::new();
        let mut rng = StdRng::seed_from_u64(1);
        let r1 = st.apply(&cfg, 1.0, &mut rng);
        let r2 = st.apply(&cfg, 1.0, &mut rng);
        assert!((r1 - 1.1).abs() < 1e-12);
        assert!((r2 - 1.21).abs() < 1e-12);
        assert!(!st.is_shocked());
    }

    #[test]
    fn certain_shock_lasts_its_slots() {
        let cfg = RateShock::shocks(1.0, 3.0, 2);
        let mut st = ShockState::new();
        let mut rng = StdRng::seed_from_u64(2);
        // Entered at the first apply, covers 2 slots, then re-enters
        // (probability 1) — the factor applies every slot here.
        for _ in 0..4 {
            assert_eq!(st.apply(&cfg, 1.0, &mut rng), 3.0);
        }
    }

    #[test]
    fn zero_probability_never_shocks() {
        let cfg = RateShock::shocks(0.0, 5.0, 3);
        let mut st = ShockState::new();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert_eq!(st.apply(&cfg, 2.0, &mut rng), 2.0);
        }
    }

    #[test]
    fn one_draw_per_apply_keeps_streams_aligned() {
        // Two state machines fed from clones of the same RNG must leave the
        // generators in identical states whatever their shock histories.
        let always = RateShock::shocks(1.0, 2.0, 4);
        let never = RateShock::shocks(0.0, 2.0, 4);
        let mut rng_a = StdRng::seed_from_u64(4);
        let mut rng_b = rng_a.clone();
        let (mut sa, mut sb) = (ShockState::new(), ShockState::new());
        for _ in 0..16 {
            sa.apply(&always, 1.0, &mut rng_a);
            sb.apply(&never, 1.0, &mut rng_b);
        }
        assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>());
    }

    #[test]
    fn validation_catches_bad_fields() {
        assert!(RateShock::shocks(0.1, 2.0, 3).validate().is_ok());
        assert!(RateShock::shocks(1.5, 2.0, 3).validate().is_err());
        assert!(RateShock::shocks(0.1, 0.0, 3).validate().is_err());
        assert!(RateShock::drift(-0.1).validate().is_err());
        assert!(RateShock::drift(f64::NAN).validate().is_err());
    }
}
