//! The charging-cycle distributions of Section VII.A.
//!
//! * **Linear**: the *average* cycle `τ̄_i` of sensor `v_i` is proportional
//!   to its distance from the base station — the nearest sensor averages
//!   `τ_min`, the farthest `τ_max` (sensors near the base station relay the
//!   most traffic, so they drain fastest). The realised cycle is drawn
//!   uniformly from `[τ̄_i − σ, τ̄_i + σ]` (`σ = 2` by default in the paper).
//! * **Random**: the cycle is uniform on `[τ_min, τ_max]` — the multimedia
//!   WSN case where image processing dominates and distance to the base
//!   station is irrelevant.
//!
//! Sampled cycles are clamped into `[τ_min, τ_max]`: the paper leaves the
//! boundary behaviour unspecified, but negative or sub-`τ_min` cycles are
//! meaningless (`Δl = τ_min` is the greedy trigger granularity) and the
//! clamp keeps `τ_min` the true minimum cycle, as every experiment assumes.

use perpetuum_geom::Point2;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How sensor charging cycles relate to geometry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CycleDistribution {
    /// Mean cycle grows linearly with distance to the base station;
    /// realised cycles jitter by ±`sigma` around the mean.
    Linear {
        /// Half-width of the uniform jitter around the mean cycle.
        sigma: f64,
    },
    /// Cycles are uniform on `[τ_min, τ_max]`, independent of position.
    Random,
}

impl CycleDistribution {
    /// The paper's default linear distribution (`σ = 2`).
    pub fn linear_default() -> Self {
        CycleDistribution::Linear { sigma: 2.0 }
    }

    /// Mean (expected) cycle of a sensor at `pos`, given the base station
    /// location and the cycle range. For [`CycleDistribution::Random`] this
    /// is the range midpoint.
    ///
    /// The linear map normalises by the farthest sensor actually deployed,
    /// so callers pass `max_bs_dist = max_i dist(v_i, bs)`; a zero
    /// `max_bs_dist` (all sensors on the base station) degenerates to
    /// `τ_min`.
    pub fn mean_cycle(
        &self,
        pos: Point2,
        base_station: Point2,
        max_bs_dist: f64,
        tau_min: f64,
        tau_max: f64,
    ) -> f64 {
        debug_assert!(tau_min > 0.0 && tau_max >= tau_min);
        match self {
            CycleDistribution::Linear { .. } => {
                if max_bs_dist <= 0.0 {
                    return tau_min;
                }
                let frac = (pos.dist(base_station) / max_bs_dist).clamp(0.0, 1.0);
                tau_min + frac * (tau_max - tau_min)
            }
            CycleDistribution::Random => 0.5 * (tau_min + tau_max),
        }
    }

    /// Samples one realised cycle for a sensor with mean cycle `mean`,
    /// clamped into `[τ_min, τ_max]`.
    pub fn sample<R: Rng + ?Sized>(
        &self,
        mean: f64,
        tau_min: f64,
        tau_max: f64,
        rng: &mut R,
    ) -> f64 {
        let raw = match self {
            CycleDistribution::Linear { sigma } => {
                if *sigma == 0.0 {
                    mean
                } else {
                    rng.gen_range((mean - sigma)..=(mean + sigma))
                }
            }
            CycleDistribution::Random => rng.gen_range(tau_min..=tau_max),
        };
        raw.clamp(tau_min, tau_max)
    }

    /// Samples the full cycle vector for a deployment: mean per position,
    /// then one realisation each.
    pub fn sample_all<R: Rng + ?Sized>(
        &self,
        positions: &[Point2],
        base_station: Point2,
        tau_min: f64,
        tau_max: f64,
        rng: &mut R,
    ) -> Vec<f64> {
        let max_bs = positions.iter().map(|p| p.dist(base_station)).fold(0.0f64, f64::max);
        positions
            .iter()
            .map(|&p| {
                let mean = self.mean_cycle(p, base_station, max_bs, tau_min, tau_max);
                self.sample(mean, tau_min, tau_max, rng)
            })
            .collect()
    }

    /// Mean cycles (without jitter) for the whole deployment — the
    /// simulator resamples around these each slot in the variable-cycle
    /// experiments.
    pub fn mean_all(
        &self,
        positions: &[Point2],
        base_station: Point2,
        tau_min: f64,
        tau_max: f64,
    ) -> Vec<f64> {
        let max_bs = positions.iter().map(|p| p.dist(base_station)).fold(0.0f64, f64::max);
        positions
            .iter()
            .map(|&p| self.mean_cycle(p, base_station, max_bs, tau_min, tau_max))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perpetuum_geom::rng::derived_rng;

    #[test]
    fn linear_mean_interpolates_by_distance() {
        let d = CycleDistribution::linear_default();
        let bs = Point2::new(0.0, 0.0);
        let near = Point2::new(0.0, 0.0);
        let mid = Point2::new(50.0, 0.0);
        let far = Point2::new(100.0, 0.0);
        assert_eq!(d.mean_cycle(near, bs, 100.0, 1.0, 50.0), 1.0);
        assert!((d.mean_cycle(mid, bs, 100.0, 1.0, 50.0) - 25.5).abs() < 1e-12);
        assert_eq!(d.mean_cycle(far, bs, 100.0, 1.0, 50.0), 50.0);
    }

    #[test]
    fn linear_degenerate_all_at_bs() {
        let d = CycleDistribution::linear_default();
        let bs = Point2::new(5.0, 5.0);
        assert_eq!(d.mean_cycle(bs, bs, 0.0, 1.0, 50.0), 1.0);
    }

    #[test]
    fn random_mean_is_midpoint() {
        let d = CycleDistribution::Random;
        let bs = Point2::ORIGIN;
        assert_eq!(d.mean_cycle(Point2::new(3.0, 4.0), bs, 100.0, 1.0, 50.0), 25.5);
    }

    #[test]
    fn samples_respect_clamp() {
        let mut rng = derived_rng(5, 0);
        let d = CycleDistribution::Linear { sigma: 10.0 };
        for _ in 0..1000 {
            // Mean at the bottom of the range: raw draws often fall below
            // τ_min and must clamp.
            let s = d.sample(1.0, 1.0, 50.0, &mut rng);
            assert!((1.0..=50.0).contains(&s));
        }
        let mass_at_min = (0..1000).filter(|_| d.sample(1.0, 1.0, 50.0, &mut rng) == 1.0).count();
        assert!(mass_at_min > 100, "clamping should concentrate mass at τ_min");
    }

    #[test]
    fn zero_sigma_is_deterministic() {
        let mut rng = derived_rng(5, 1);
        let d = CycleDistribution::Linear { sigma: 0.0 };
        assert_eq!(d.sample(7.0, 1.0, 50.0, &mut rng), 7.0);
    }

    #[test]
    fn random_samples_cover_range() {
        let mut rng = derived_rng(5, 2);
        let d = CycleDistribution::Random;
        let samples: Vec<f64> = (0..2000).map(|_| d.sample(0.0, 1.0, 50.0, &mut rng)).collect();
        let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().cloned().fold(0.0f64, f64::max);
        assert!(lo < 3.0, "low tail unreached: {lo}");
        assert!(hi > 48.0, "high tail unreached: {hi}");
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 25.5).abs() < 1.5, "mean {mean} far from 25.5");
    }

    #[test]
    fn sample_all_matches_geometry() {
        let mut rng = derived_rng(5, 3);
        let bs = Point2::new(0.0, 0.0);
        let pts = vec![bs, Point2::new(100.0, 0.0)];
        let d = CycleDistribution::Linear { sigma: 0.0 };
        let cycles = d.sample_all(&pts, bs, 1.0, 50.0, &mut rng);
        assert_eq!(cycles, vec![1.0, 50.0]);
    }

    #[test]
    fn mean_all_uses_farthest_sensor() {
        let bs = Point2::new(0.0, 0.0);
        let pts = vec![Point2::new(10.0, 0.0), Point2::new(20.0, 0.0)];
        let d = CycleDistribution::linear_default();
        let means = d.mean_all(&pts, bs, 1.0, 50.0);
        // Farthest sensor (20 m) maps to τ_max, the 10 m one to the middle.
        assert_eq!(means[1], 50.0);
        assert!((means[0] - 25.5).abs() < 1e-12);
    }
}
