//! Rechargeable battery with exact piecewise-linear energy bookkeeping.

use serde::{Deserialize, Serialize};

/// A sensor battery.
///
/// The paper normalises sensors by their maximum charging cycle
/// `τ_i = B_i / ρ_i`; the default capacity is therefore `1.0` so a rate of
/// `ρ = 1/τ` drains a full battery in exactly `τ` time units. Energy never
/// goes below zero: once the level hits zero the sensor is dead until the
/// next charge (deaths are what the feasibility experiments count).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Battery {
    capacity: f64,
    level: f64,
    /// Relative capacity lost per full charge (battery aging); 0 = the
    /// paper's ideal battery.
    fade_per_charge: f64,
    /// Capacity never fades below this (end-of-life floor — real batteries
    /// are replaced, they don't decay to zero; unbounded fade would also
    /// make the charging demand diverge in finite time).
    capacity_floor: f64,
}

impl Battery {
    /// A full battery of the given capacity.
    ///
    /// # Panics
    /// Panics when `capacity` is not strictly positive and finite.
    pub fn full(capacity: f64) -> Self {
        assert!(
            capacity > 0.0 && capacity.is_finite(),
            "battery capacity must be positive and finite, got {capacity}"
        );
        Self { capacity, level: capacity, fade_per_charge: 0.0, capacity_floor: 0.0 }
    }

    /// A full battery that loses a relative `fade` of its capacity at
    /// every recharge (LiFePO4-style cycle aging, exaggerated to whatever
    /// the experiment needs), bottoming out at `floor_fraction` of the
    /// initial capacity (the ~50–80% industry end-of-life threshold).
    ///
    /// # Panics
    /// Panics unless `0 ≤ fade < 1` and `0 < floor_fraction ≤ 1`.
    pub fn full_with_fade(capacity: f64, fade: f64, floor_fraction: f64) -> Self {
        assert!((0.0..1.0).contains(&fade), "fade must be in [0, 1), got {fade}");
        assert!(
            floor_fraction > 0.0 && floor_fraction <= 1.0,
            "floor fraction must be in (0, 1], got {floor_fraction}"
        );
        let mut b = Self::full(capacity);
        b.fade_per_charge = fade;
        b.capacity_floor = capacity * floor_fraction;
        b
    }

    /// A battery at an arbitrary level `level ∈ [0, capacity]`.
    pub fn at_level(capacity: f64, level: f64) -> Self {
        let mut b = Self::full(capacity);
        assert!((0.0..=capacity).contains(&level), "level {level} outside [0, {capacity}]");
        b.level = level;
        b
    }

    /// Battery capacity `B_i`.
    #[inline]
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Current energy level.
    #[inline]
    pub fn level(&self) -> f64 {
        self.level
    }

    /// Fraction of capacity remaining, in `[0, 1]`.
    #[inline]
    pub fn fraction(&self) -> f64 {
        self.level / self.capacity
    }

    /// True once the battery is fully depleted.
    #[inline]
    pub fn is_dead(&self) -> bool {
        self.level <= 0.0
    }

    /// Drains at constant rate `rate` for `duration` time units, saturating
    /// at zero. Returns `true` when the battery ran dry *during* this drain
    /// (i.e. it was alive before and is dead after).
    pub fn drain(&mut self, rate: f64, duration: f64) -> bool {
        debug_assert!(rate >= 0.0 && duration >= 0.0);
        let was_alive = !self.is_dead();
        self.level = (self.level - rate * duration).max(0.0);
        was_alive && self.is_dead()
    }

    /// Level after draining at constant `rate` for `duration`, without
    /// mutating the battery. This is the read side of the simulator's
    /// lazy energy accounting: a battery stored at its last touch point
    /// can be peeked at any later instant in O(1).
    #[inline]
    pub fn level_after(&self, rate: f64, duration: f64) -> f64 {
        debug_assert!(rate >= 0.0 && duration >= 0.0);
        (self.level - rate * duration).max(0.0)
    }

    /// Empties the battery in place. The simulator settles a predicted
    /// death by pinning the level to exactly zero (a saturating
    /// [`Self::drain`] past the crossing lands there too; this skips the
    /// arithmetic).
    #[inline]
    pub fn deplete(&mut self) {
        self.level = 0.0;
    }

    /// Recharges to full capacity (the paper's point-to-point charging
    /// always charges a visited sensor to its full capacity), applying any
    /// configured aging first.
    pub fn charge_full(&mut self) {
        self.capacity = (self.capacity * (1.0 - self.fade_per_charge)).max(self.capacity_floor);
        self.level = self.capacity;
    }

    /// Time until depletion when drained at constant `rate`; `+∞` for a
    /// zero rate.
    pub fn lifetime_at(&self, rate: f64) -> f64 {
        debug_assert!(rate >= 0.0);
        if rate == 0.0 {
            f64::INFINITY
        } else {
            self.level / rate
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_battery_starts_full() {
        let b = Battery::full(2.5);
        assert_eq!(b.capacity(), 2.5);
        assert_eq!(b.level(), 2.5);
        assert_eq!(b.fraction(), 1.0);
        assert!(!b.is_dead());
    }

    #[test]
    fn drain_decrements_and_saturates() {
        let mut b = Battery::full(1.0);
        assert!(!b.drain(0.1, 5.0));
        assert!((b.level() - 0.5).abs() < 1e-12);
        // Draining past zero kills it exactly once.
        assert!(b.drain(1.0, 10.0));
        assert_eq!(b.level(), 0.0);
        assert!(b.is_dead());
        assert!(!b.drain(1.0, 1.0), "already dead: no new death event");
    }

    #[test]
    fn charge_restores_full() {
        let mut b = Battery::full(1.0);
        b.drain(1.0, 0.7);
        b.charge_full();
        assert_eq!(b.level(), 1.0);
        assert!(!b.is_dead());
    }

    #[test]
    fn lifetime_matches_rate() {
        let b = Battery::at_level(1.0, 0.25);
        assert!((b.lifetime_at(0.5) - 0.5).abs() < 1e-12);
        assert_eq!(b.lifetime_at(0.0), f64::INFINITY);
    }

    #[test]
    fn exact_cycle_drain() {
        // Normalised battery: rate 1/τ drains in exactly τ.
        let tau = 7.0;
        let mut b = Battery::full(1.0);
        assert!(!b.drain(1.0 / tau, tau * 0.999));
        assert!(b.level() > 0.0);
        assert!(b.drain(1.0 / tau, tau * 0.002));
        assert!(b.is_dead());
    }

    #[test]
    fn level_after_peeks_without_mutating() {
        let mut b = Battery::full(1.0);
        assert!((b.level_after(0.1, 5.0) - 0.5).abs() < 1e-12);
        assert_eq!(b.level(), 1.0, "peek must not drain");
        // The peek agrees exactly with a single equivalent drain.
        let peek = b.level_after(0.25, 3.0);
        b.drain(0.25, 3.0);
        assert_eq!(b.level(), peek);
        // Saturates at zero like `drain`.
        assert_eq!(b.level_after(10.0, 10.0), 0.0);
    }

    #[test]
    fn deplete_empties_in_place() {
        let mut b = Battery::full(2.0);
        b.deplete();
        assert_eq!(b.level(), 0.0);
        assert!(b.is_dead());
        assert_eq!(b.capacity(), 2.0, "capacity untouched");
        b.charge_full();
        assert_eq!(b.level(), 2.0);
    }

    #[test]
    fn fade_shrinks_capacity_per_charge() {
        let mut b = Battery::full_with_fade(1.0, 0.1, 0.5);
        assert_eq!(b.capacity(), 1.0);
        b.drain(1.0, 0.5);
        b.charge_full();
        assert!((b.capacity() - 0.9).abs() < 1e-12);
        assert_eq!(b.level(), b.capacity());
        b.charge_full();
        assert!((b.capacity() - 0.81).abs() < 1e-12);
        // Zero fade is the ideal battery.
        let mut ideal = Battery::full(1.0);
        ideal.charge_full();
        assert_eq!(ideal.capacity(), 1.0);
    }

    #[test]
    fn fade_respects_end_of_life_floor() {
        let mut b = Battery::full_with_fade(1.0, 0.5, 0.6);
        b.charge_full(); // 0.5 < floor 0.6 → clamps
        assert_eq!(b.capacity(), 0.6);
        b.charge_full();
        assert_eq!(b.capacity(), 0.6, "floor is sticky");
    }

    #[test]
    #[should_panic(expected = "fade must be in")]
    fn fade_bounds_checked() {
        Battery::full_with_fade(1.0, 1.0, 0.5);
    }

    #[test]
    #[should_panic(expected = "floor fraction")]
    fn floor_bounds_checked() {
        Battery::full_with_fade(1.0, 0.1, 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        Battery::full(0.0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn at_level_validates_range() {
        Battery::at_level(1.0, 1.5);
    }
}
