//! Consumption-rate processes: how a sensor's drain rate evolves over time.
//!
//! Rates are piecewise constant over *slots* of length `ΔT` (Section VII.A:
//! "the maximum charging cycle τ_i(t) of each sensor does not change within
//! each time slot ΔT"). A [`ConsumptionProcess`] yields the rate for each
//! slot; the simulator integrates energy exactly between slot boundaries.

use crate::cycles::CycleDistribution;
use rand::Rng;

/// A per-sensor consumption-rate process, sampled once per slot.
pub trait ConsumptionProcess {
    /// Drain rate (energy per time unit) during slot `slot` (0-based).
    ///
    /// Must be deterministic given the process state and `rng` stream —
    /// the simulator calls it exactly once per sensor per slot, in slot
    /// order.
    fn rate_for_slot<R: Rng + ?Sized>(&mut self, slot: u64, rng: &mut R) -> f64;

    /// True when the rate can change between slots (drives whether the
    /// variable-cycle machinery is needed at all).
    fn is_variable(&self) -> bool;
}

/// A constant drain rate — the fixed-maximum-charging-cycle setting of
/// Section V. With a normalised battery (`B = 1`) a cycle `τ` gives rate
/// `1/τ`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FixedRate(pub f64);

impl FixedRate {
    /// Rate corresponding to maximum charging cycle `tau` for a battery of
    /// capacity `capacity`.
    pub fn from_cycle(capacity: f64, tau: f64) -> Self {
        assert!(tau > 0.0, "cycle must be positive");
        FixedRate(capacity / tau)
    }
}

impl ConsumptionProcess for FixedRate {
    fn rate_for_slot<R: Rng + ?Sized>(&mut self, _slot: u64, _rng: &mut R) -> f64 {
        self.0
    }

    fn is_variable(&self) -> bool {
        false
    }
}

/// Variable rates: each slot, the realised maximum charging cycle is
/// redrawn from the sensor's cycle distribution around its mean `τ̄`, and
/// the rate is `B/τ`. This is the Section VI / Figures 3–6 workload.
#[derive(Debug, Clone)]
pub struct SlottedResample {
    /// Battery capacity `B` (rate = `B / τ`).
    pub capacity: f64,
    /// Mean cycle `τ̄` of this sensor.
    pub mean_cycle: f64,
    /// Cycle distribution (carries σ for the linear case).
    pub dist: CycleDistribution,
    /// Global cycle clamp `[τ_min, τ_max]`.
    pub tau_min: f64,
    /// See `tau_min`.
    pub tau_max: f64,
    last_cycle: f64,
}

impl SlottedResample {
    /// Creates the process; the slot-0 cycle is drawn on first use.
    pub fn new(
        capacity: f64,
        mean_cycle: f64,
        dist: CycleDistribution,
        tau_min: f64,
        tau_max: f64,
    ) -> Self {
        assert!(tau_min > 0.0 && tau_max >= tau_min);
        Self { capacity, mean_cycle, dist, tau_min, tau_max, last_cycle: f64::NAN }
    }

    /// The cycle realised for the most recently sampled slot.
    pub fn current_cycle(&self) -> f64 {
        self.last_cycle
    }
}

impl ConsumptionProcess for SlottedResample {
    fn rate_for_slot<R: Rng + ?Sized>(&mut self, _slot: u64, rng: &mut R) -> f64 {
        let tau = self.dist.sample(self.mean_cycle, self.tau_min, self.tau_max, rng);
        self.last_cycle = tau;
        self.capacity / tau
    }

    fn is_variable(&self) -> bool {
        true
    }
}

/// Bursty consumption: a two-state Markov chain (calm / burst) sampled per
/// slot. In *calm* slots the cycle sits at `mean_cycle` (with the usual
/// jitter); in *burst* slots — a detected event, a storm, a tracked target
/// — the cycle collapses by `burst_factor`. Models event-detection WSNs,
/// whose load is neither fixed (Section V) nor i.i.d. per slot
/// (Section VII.A); used by the burst-robustness extension experiment.
#[derive(Debug, Clone)]
pub struct MarkovBurst {
    /// Battery capacity `B` (rate = `B / τ`).
    pub capacity: f64,
    /// Calm-state cycle `τ̄`.
    pub mean_cycle: f64,
    /// Cycle divisor during a burst (`≥ 1`).
    pub burst_factor: f64,
    /// P(calm → burst) per slot.
    pub p_enter: f64,
    /// P(burst → calm) per slot.
    pub p_exit: f64,
    /// Global cycle clamp.
    pub tau_min: f64,
    /// See `tau_min`.
    pub tau_max: f64,
    bursting: bool,
    last_cycle: f64,
}

impl MarkovBurst {
    /// Creates the process, starting calm.
    pub fn new(
        capacity: f64,
        mean_cycle: f64,
        burst_factor: f64,
        p_enter: f64,
        p_exit: f64,
        tau_min: f64,
        tau_max: f64,
    ) -> Self {
        assert!(burst_factor >= 1.0, "a burst shortens cycles");
        assert!((0.0..=1.0).contains(&p_enter) && (0.0..=1.0).contains(&p_exit));
        assert!(tau_min > 0.0 && tau_max >= tau_min);
        Self {
            capacity,
            mean_cycle,
            burst_factor,
            p_enter,
            p_exit,
            tau_min,
            tau_max,
            bursting: false,
            last_cycle: f64::NAN,
        }
    }

    /// True while the sensor is in the burst state.
    pub fn is_bursting(&self) -> bool {
        self.bursting
    }

    /// The cycle realised for the most recently sampled slot.
    pub fn current_cycle(&self) -> f64 {
        self.last_cycle
    }
}

impl ConsumptionProcess for MarkovBurst {
    fn rate_for_slot<R: Rng + ?Sized>(&mut self, _slot: u64, rng: &mut R) -> f64 {
        let roll: f64 = rng.gen();
        self.bursting = if self.bursting { roll >= self.p_exit } else { roll < self.p_enter };
        let raw = if self.bursting { self.mean_cycle / self.burst_factor } else { self.mean_cycle };
        let tau = raw.clamp(self.tau_min, self.tau_max);
        self.last_cycle = tau;
        self.capacity / tau
    }

    fn is_variable(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perpetuum_geom::rng::derived_rng;

    #[test]
    fn fixed_rate_constant_across_slots() {
        let mut p = FixedRate::from_cycle(1.0, 4.0);
        let mut rng = derived_rng(0, 0);
        assert_eq!(p.rate_for_slot(0, &mut rng), 0.25);
        assert_eq!(p.rate_for_slot(99, &mut rng), 0.25);
        assert!(!p.is_variable());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn fixed_rate_rejects_zero_cycle() {
        FixedRate::from_cycle(1.0, 0.0);
    }

    #[test]
    fn slotted_rates_within_clamped_range() {
        let mut p =
            SlottedResample::new(1.0, 25.0, CycleDistribution::Linear { sigma: 10.0 }, 1.0, 50.0);
        let mut rng = derived_rng(1, 0);
        for slot in 0..500 {
            let r = p.rate_for_slot(slot, &mut rng);
            let tau = p.current_cycle();
            assert!((1.0..=50.0).contains(&tau));
            assert!((r - 1.0 / tau).abs() < 1e-12);
        }
        assert!(p.is_variable());
    }

    #[test]
    fn slotted_rates_actually_vary() {
        let mut p =
            SlottedResample::new(1.0, 25.0, CycleDistribution::Linear { sigma: 5.0 }, 1.0, 50.0);
        let mut rng = derived_rng(1, 1);
        let r0 = p.rate_for_slot(0, &mut rng);
        let distinct = (1..50)
            .map(|s| p.rate_for_slot(s, &mut rng))
            .filter(|&r| (r - r0).abs() > 1e-15)
            .count();
        assert!(distinct > 40);
    }

    #[test]
    fn markov_burst_states_and_clamp() {
        let mut p = MarkovBurst::new(1.0, 40.0, 8.0, 0.3, 0.5, 1.0, 50.0);
        let mut rng = derived_rng(2, 0);
        let mut burst_slots = 0;
        let mut calm_slots = 0;
        for slot in 0..2000 {
            let r = p.rate_for_slot(slot, &mut rng);
            let tau = p.current_cycle();
            assert!((1.0..=50.0).contains(&tau));
            assert!((r - 1.0 / tau).abs() < 1e-12);
            if p.is_bursting() {
                assert_eq!(tau, 5.0); // 40 / 8
                burst_slots += 1;
            } else {
                assert_eq!(tau, 40.0);
                calm_slots += 1;
            }
        }
        // Stationary burst probability = p_enter / (p_enter + p_exit) = 0.375.
        let frac = burst_slots as f64 / (burst_slots + calm_slots) as f64;
        assert!((frac - 0.375).abs() < 0.05, "burst fraction {frac}");
    }

    #[test]
    fn markov_burst_never_bursts_with_zero_probability() {
        let mut p = MarkovBurst::new(1.0, 20.0, 4.0, 0.0, 1.0, 1.0, 50.0);
        let mut rng = derived_rng(2, 1);
        for slot in 0..100 {
            p.rate_for_slot(slot, &mut rng);
            assert!(!p.is_bursting());
            assert_eq!(p.current_cycle(), 20.0);
        }
    }

    #[test]
    #[should_panic(expected = "burst shortens")]
    fn markov_burst_rejects_sub_one_factor() {
        MarkovBurst::new(1.0, 20.0, 0.5, 0.1, 0.1, 1.0, 50.0);
    }

    #[test]
    fn sigma_zero_is_constant_cycle() {
        let mut p =
            SlottedResample::new(1.0, 10.0, CycleDistribution::Linear { sigma: 0.0 }, 1.0, 50.0);
        let mut rng = derived_rng(1, 2);
        for slot in 0..10 {
            assert_eq!(p.rate_for_slot(slot, &mut rng), 0.1);
        }
    }
}
