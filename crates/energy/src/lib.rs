//! Energy models for the `perpetuum` workspace.
//!
//! Section III of the paper models every sensor `v_i` as a rechargeable
//! battery of capacity `B_i` drained at rate `ρ_i`, giving the *maximum
//! charging cycle* `τ_i = B_i / ρ_i`. Section VI adds time-varying rates and
//! a lightweight EWMA prediction at each sensor; Section VII.A defines the
//! two charging-cycle distributions the evaluation sweeps (linear in
//! distance to the base station, and uniform random).
//!
//! This crate provides those pieces:
//!
//! * [`Battery`] — exact energy bookkeeping with piecewise-constant drain,
//! * [`cycles`] — the *linear* and *random* cycle distributions,
//! * [`consumption`] — fixed and per-slot-resampled consumption processes,
//! * [`predictor`] — the paper's EWMA rate predictor
//!   (`ρ̂(t+1) = γ·ρ(t) + (1−γ)·ρ̂(t)`) and the derived residual-lifetime /
//!   maximum-cycle estimators,
//! * [`shock`] — adverse rate dynamics (shocks and drift) layered on any
//!   rate process by the fault-injection subsystem.

pub mod battery;
pub mod consumption;
pub mod cycles;
pub mod predictor;
pub mod shock;

pub use battery::Battery;
pub use consumption::{ConsumptionProcess, FixedRate, MarkovBurst, SlottedResample};
pub use cycles::CycleDistribution;
pub use predictor::{EwmaPredictor, HoltPredictor};
pub use shock::{RateShock, ShockState};
