//! Energy models for the `perpetuum` workspace.
//!
//! Section III of the paper models every sensor `v_i` as a rechargeable
//! battery of capacity `B_i` drained at rate `ρ_i`, giving the *maximum
//! charging cycle* `τ_i = B_i / ρ_i`. Section VI adds time-varying rates and
//! a lightweight EWMA prediction at each sensor; Section VII.A defines the
//! two charging-cycle distributions the evaluation sweeps (linear in
//! distance to the base station, and uniform random).
//!
//! This crate provides those pieces:
//!
//! * [`Battery`] — exact energy bookkeeping with piecewise-constant drain,
//! * [`cycles`] — the *linear* and *random* cycle distributions,
//! * [`consumption`] — fixed and per-slot-resampled consumption processes,
//! * [`predictor`] — the paper's EWMA rate predictor
//!   (`ρ̂(t+1) = γ·ρ(t) + (1−γ)·ρ̂(t)`) and the derived residual-lifetime /
//!   maximum-cycle estimators,
//! * [`shock`] — adverse rate dynamics (shocks and drift) layered on any
//!   rate process by the fault-injection subsystem.
//!
//! # `no_std` support
//!
//! The prediction module is the sensor-side half of the closed control
//! loop, so it must run on the sensors themselves. With
//! `default-features = false` the crate drops to `#![no_std]` and compiles
//! only [`predictor`] — pure `core` float math, no allocation, no
//! dependencies. The simulation-side models (battery, consumption, cycles,
//! shock) need RNG and serde and stay behind the default `std` feature.

#![cfg_attr(not(feature = "std"), no_std)]
#![deny(unsafe_code)]

#[cfg(feature = "std")]
pub mod battery;
#[cfg(feature = "std")]
pub mod consumption;
#[cfg(feature = "std")]
pub mod cycles;
pub mod predictor;
#[cfg(feature = "std")]
pub mod shock;

#[cfg(feature = "std")]
pub use battery::Battery;
#[cfg(feature = "std")]
pub use consumption::{ConsumptionProcess, FixedRate, MarkovBurst, SlottedResample};
#[cfg(feature = "std")]
pub use cycles::CycleDistribution;
pub use predictor::{EwmaPredictor, HoltPredictor};
#[cfg(feature = "std")]
pub use shock::{RateShock, ShockState};
