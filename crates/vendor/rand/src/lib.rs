//! Offline shim of the tiny `rand` 0.8 API surface the workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the handful of external APIs it needs as in-repo shims (see
//! `crates/vendor/`). This crate reimplements:
//!
//! * [`RngCore`] / [`Rng`] with `gen`, `gen_range` and `gen_bool`,
//! * [`SeedableRng`] with `seed_from_u64` / `from_seed`,
//! * [`rngs::StdRng`], here a xoshiro256++ generator.
//!
//! The *streams* differ from upstream `rand` (whose `StdRng` is ChaCha12),
//! so seeded tests reproduce against this shim, not against upstream. All
//! generators are deterministic functions of their seed, which is the only
//! property the workspace relies on.

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types uniformly sampleable over a bounded interval.
///
/// Mirrors upstream's `SampleUniform`: `SampleRange` is implemented once,
/// generically over `T: SampleUniform`, so integer-literal type inference
/// flows through `gen_range(3..7)` exactly as it does with upstream `rand`.
pub trait SampleUniform: Copy {
    /// Uniform sample in `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;

    /// Uniform sample in `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value of the range from `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }

            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let unit = <$t as Standard>::from_rng(rng);
                lo + (hi - lo) * unit
            }

            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                // 53-bit inclusive unit sample.
                let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
                lo + (hi - lo) * (unit as $t)
            }
        }
    )*};
}

impl_float_uniform!(f32, f64);

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A value drawn uniformly from `T`'s natural domain (`[0, 1)` for
    /// floats, the full range for integers).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// A value drawn uniformly from `range`.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        <f64 as Standard>::from_rng(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the RNG from a 64-bit seed, expanded with SplitMix64 like
    /// upstream `rand`.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            let word = (z ^ (z >> 31)).to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG: xoshiro256++.
    ///
    /// Not the upstream ChaCha12 `StdRng` — streams differ, determinism per
    /// seed does not.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            // An all-zero state would be a fixed point; xoshiro requires a
            // non-zero state.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f = rng.gen_range(2.5..7.5);
            assert!((2.5..7.5).contains(&f));
            let g = rng.gen_range(-1.0..=1.0f64);
            assert!((-1.0..=1.0).contains(&g));
            let i = rng.gen_range(3..9usize);
            assert!((3..9).contains(&i));
            let j = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&j));
            let u = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn unsized_rng_usable_through_generic_bound() {
        fn draw<R: super::Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen_range(0.0..1.0)
        }
        let mut rng = StdRng::seed_from_u64(3);
        assert!(draw(&mut rng) < 1.0);
    }
}
