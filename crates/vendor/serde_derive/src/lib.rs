//! Offline shim of serde's `#[derive(Serialize, Deserialize)]`.
//!
//! Implemented directly on the `proc_macro` token API (the registry — and
//! therefore `syn`/`quote` — is unavailable offline). Supports exactly the
//! shapes the workspace derives:
//!
//! * named-field structs (with per-field `#[serde(default)]`),
//! * tuple structs,
//! * unit structs,
//! * enums with unit, named-field and tuple variants.
//!
//! Generics and non-`default` serde attributes are rejected with a
//! `compile_error!`, which keeps failure modes loud and local.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    default: bool,
}

enum VariantKind {
    Unit,
    Named(Vec<Field>),
    Tuple(usize),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Shape {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    shape: Shape,
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Consumes leading `#[...]` attributes; returns true if any carried
/// `serde(default)`.
fn skip_attrs(tokens: &[TokenTree], pos: &mut usize) -> Result<bool, String> {
    let mut has_default = false;
    while matches!(&tokens.get(*pos), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        let Some(TokenTree::Group(g)) = tokens.get(*pos + 1) else {
            return Err("malformed attribute".into());
        };
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        if let Some(TokenTree::Ident(id)) = inner.first() {
            if id.to_string() == "serde" {
                let Some(TokenTree::Group(args)) = inner.get(1) else {
                    return Err("malformed #[serde(...)] attribute".into());
                };
                for tok in args.stream() {
                    match tok {
                        TokenTree::Ident(ref arg) if arg.to_string() == "default" => {
                            has_default = true;
                        }
                        TokenTree::Punct(ref p) if p.as_char() == ',' => {}
                        other => {
                            return Err(format!(
                                "unsupported serde attribute `{other}` (shim supports only `default`)"
                            ));
                        }
                    }
                }
            }
        }
        *pos += 2;
    }
    Ok(has_default)
}

/// Consumes an optional `pub` / `pub(...)` visibility.
fn skip_vis(tokens: &[TokenTree], pos: &mut usize) {
    if matches!(&tokens.get(*pos), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *pos += 1;
        if matches!(
            &tokens.get(*pos),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            *pos += 1;
        }
    }
}

/// Parses `name: Type, ...` named fields from a brace group's tokens.
fn parse_named_fields(tokens: &[TokenTree]) -> Result<Vec<Field>, String> {
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let default = skip_attrs(tokens, &mut pos)?;
        if pos >= tokens.len() {
            break;
        }
        skip_vis(tokens, &mut pos);
        let TokenTree::Ident(name) = &tokens[pos] else {
            return Err(format!("expected field name, found `{}`", tokens[pos]));
        };
        pos += 1;
        if !matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ':') {
            return Err(format!("expected `:` after field `{name}`"));
        }
        pos += 1;
        // Skip the type: everything until a comma at angle-bracket depth 0.
        let mut angle_depth = 0i32;
        while pos < tokens.len() {
            match &tokens[pos] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
            pos += 1;
        }
        pos += 1; // consume the comma (or run off the end)
        fields.push(Field { name: name.to_string(), default });
    }
    Ok(fields)
}

/// Counts the fields of a tuple struct/variant (top-level commas + 1).
fn count_tuple_fields(tokens: &[TokenTree]) -> usize {
    if tokens.is_empty() {
        return 0;
    }
    let mut angle_depth = 0i32;
    let mut count = 1;
    let mut trailing_comma = false;
    for t in tokens {
        trailing_comma = false;
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                trailing_comma = true;
            }
            _ => {}
        }
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

fn parse_variants(tokens: &[TokenTree]) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attrs(tokens, &mut pos)?;
        if pos >= tokens.len() {
            break;
        }
        let TokenTree::Ident(name) = &tokens[pos] else {
            return Err(format!("expected variant name, found `{}`", tokens[pos]));
        };
        pos += 1;
        let kind = match &tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                pos += 1;
                VariantKind::Named(parse_named_fields(&inner)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                pos += 1;
                VariantKind::Tuple(count_tuple_fields(&inner))
            }
            _ => VariantKind::Unit,
        };
        // Skip a discriminant (`= expr`) if present, then the comma.
        while pos < tokens.len()
            && !matches!(&tokens[pos], TokenTree::Punct(p) if p.as_char() == ',')
        {
            pos += 1;
        }
        pos += 1;
        variants.push(Variant { name: name.to_string(), kind });
    }
    Ok(variants)
}

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    skip_attrs(&tokens, &mut pos)?;
    skip_vis(&tokens, &mut pos);
    let TokenTree::Ident(kw) = &tokens[pos] else {
        return Err("expected `struct` or `enum`".into());
    };
    let kw = kw.to_string();
    pos += 1;
    let TokenTree::Ident(name) = &tokens[pos] else {
        return Err("expected type name".into());
    };
    let name = name.to_string();
    pos += 1;
    if matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("vendored serde_derive does not support generic type `{name}`"));
    }
    let shape = match (kw.as_str(), tokens.get(pos)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            Shape::NamedStruct(parse_named_fields(&inner)?)
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            Shape::TupleStruct(count_tuple_fields(&inner))
        }
        ("struct", _) => Shape::UnitStruct,
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            Shape::Enum(parse_variants(&inner)?)
        }
        _ => return Err(format!("cannot derive for `{kw} {name}`")),
    };
    Ok(Input { name, shape })
}

// ---- Serialize ------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::NamedStruct(fields) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({n:?}), ::serde::Serialize::to_value(&self.{n}))",
                        n = f.name
                    )
                })
                .collect();
            format!("::serde::Value::Obj(::std::vec![{}])", pairs.join(", "))
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> =
                (0..*n).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
            format!("::serde::Value::Arr(::std::vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(::std::string::String::from({vn:?}))"
                        ),
                        VariantKind::Named(fields) => {
                            let binders: Vec<&str> =
                                fields.iter().map(|f| f.name.as_str()).collect();
                            let pairs: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from({n:?}), ::serde::Serialize::to_value({n}))",
                                        n = f.name
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Obj(::std::vec![(::std::string::String::from({vn:?}), ::serde::Value::Obj(::std::vec![{pairs}]))])",
                                binds = binders.join(", "),
                                pairs = pairs.join(", ")
                            )
                        }
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(f0) => ::serde::Value::Obj(::std::vec![(::std::string::String::from({vn:?}), ::serde::Serialize::to_value(f0))])"
                        ),
                        VariantKind::Tuple(n) => {
                            let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({binds}) => ::serde::Value::Obj(::std::vec![(::std::string::String::from({vn:?}), ::serde::Value::Arr(::std::vec![{items}]))])",
                                binds = binders.join(", "),
                                items = items.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

// ---- Deserialize ----------------------------------------------------------

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    let helper = if f.default { "de_field_or_default" } else { "de_field" };
                    format!("{n}: ::serde::{helper}(v, {n:?})?", n = f.name)
                })
                .collect();
            format!(
                "match v {{\n\
                     ::serde::Value::Obj(_) => ::std::result::Result::Ok({name} {{ {inits} }}),\n\
                     _ => ::std::result::Result::Err(::serde::DeError::expected({expected:?}, v)),\n\
                 }}",
                inits = inits.join(", "),
                expected = format!("struct {name}")
            )
        }
        Shape::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "match v {{\n\
                     ::serde::Value::Arr(items) if items.len() == {n} =>\n\
                         ::std::result::Result::Ok({name}({items})),\n\
                     _ => ::std::result::Result::Err(::serde::DeError::expected({expected:?}, v)),\n\
                 }}",
                items = items.join(", "),
                expected = format!("tuple struct {name}")
            )
        }
        Shape::UnitStruct => format!("{{ let _ = v; ::std::result::Result::Ok({name}) }}"),
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("{vn:?} => ::std::result::Result::Ok({name}::{vn}),", vn = v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    let helper =
                                        if f.default { "de_field_or_default" } else { "de_field" };
                                    format!("{n}: ::serde::{helper}(content, {n:?})?", n = f.name)
                                })
                                .collect();
                            Some(format!(
                                "{vn:?} => ::std::result::Result::Ok({name}::{vn} {{ {} }}),",
                                inits.join(", ")
                            ))
                        }
                        VariantKind::Tuple(1) => Some(format!(
                            "{vn:?} => ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_value(content)?)),"
                        )),
                        VariantKind::Tuple(n) => Some(format!(
                            "{vn:?} => match content {{\n\
                                 ::serde::Value::Arr(items) if items.len() == {n} =>\n\
                                     ::std::result::Result::Ok({name}::{vn}({items})),\n\
                                 _ => ::std::result::Result::Err(::serde::DeError::expected({expected:?}, content)),\n\
                             }},",
                            items = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                                .collect::<Vec<_>>()
                                .join(", "),
                            expected = format!("variant {name}::{vn}")
                        )),
                    }
                })
                .collect();
            format!(
                "match v {{\n\
                     ::serde::Value::Str(s) => match s.as_str() {{\n\
                         {unit_arms}\n\
                         other => ::std::result::Result::Err(::serde::DeError(\n\
                             ::std::format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Obj(pairs) if pairs.len() == 1 => {{\n\
                         let (tag, content) = &pairs[0];\n\
                         match tag.as_str() {{\n\
                             {data_arms}\n\
                             other => ::std::result::Result::Err(::serde::DeError(\n\
                                 ::std::format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                         }}\n\
                     }}\n\
                     _ => ::std::result::Result::Err(::serde::DeError::expected({expected:?}, v)),\n\
                 }}",
                unit_arms = unit_arms.join("\n"),
                data_arms = data_arms.join("\n"),
                expected = format!("enum {name}")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

/// Derives the shim's `serde::Serialize` for a struct or enum.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_input(input) {
        Ok(parsed) => gen_serialize(&parsed).parse().unwrap(),
        Err(msg) => compile_error(&msg),
    }
}

/// Derives the shim's `serde::Deserialize` for a struct or enum.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_input(input) {
        Ok(parsed) => gen_deserialize(&parsed).parse().unwrap(),
        Err(msg) => compile_error(&msg),
    }
}
