//! Offline shim of the `proptest` API surface the workspace uses.
//!
//! Property tests here are plain seeded sampling loops: each case draws its
//! inputs from a deterministic RNG keyed on `(file, line, case index)` and
//! runs the body. There is no shrinking — a failing case prints its index,
//! and re-running reproduces it exactly because the stream is derived from
//! the source location, not from time.
//!
//! Supported surface: `proptest! { #![proptest_config(...)] #[test] fn
//! f(x in strat, ..) { .. } }`, `prop_compose!` (one or two dependent
//! binding groups), `prop_assert!`/`prop_assert_eq!`, range strategies over
//! ints and floats, strategy tuples, [`Just`], `.prop_map`,
//! `prop::collection::vec`, `prop::option::of`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of cases each property runs.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// How many random cases to execute.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps offline test walls short while
        // still exercising plenty of structure.
        Self { cases: 64 }
    }
}

/// A generator of random values (no shrinking in the shim).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// A strategy defined by a sampling closure (used by `prop_compose!`).
pub struct FnStrategy<F>(F);

impl<T, F: Fn(&mut StdRng) -> T> Strategy for FnStrategy<F> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        (self.0)(rng)
    }
}

/// Wraps a sampling closure as a [`Strategy`].
pub fn fn_strategy<T, F: Fn(&mut StdRng) -> T>(f: F) -> FnStrategy<F> {
    FnStrategy(f)
}

/// Sizes accepted by [`prop::collection::vec`]: a fixed length or a range.
pub trait SizeRange {
    /// Draws a length.
    fn pick(&self, rng: &mut StdRng) -> usize;
}

impl SizeRange for usize {
    fn pick(&self, _rng: &mut StdRng) -> usize {
        *self
    }
}

impl SizeRange for std::ops::Range<usize> {
    fn pick(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.clone())
    }
}

impl SizeRange for std::ops::RangeInclusive<usize> {
    fn pick(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.clone())
    }
}

pub mod prop {
    //! The `prop::` namespace mirror (`prop::collection::vec`).

    pub mod collection {
        //! Collection strategies.

        use super::super::{SizeRange, Strategy};
        use rand::rngs::StdRng;

        /// Strategy for `Vec`s whose elements come from `element` and whose
        /// length comes from `size`.
        pub struct VecStrategy<S, R> {
            element: S,
            size: R,
        }

        impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let len = self.size.pick(rng);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// A vector strategy (mirrors `proptest::collection::vec`).
        pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
            VecStrategy { element, size }
        }
    }

    pub mod option {
        //! Option strategies.

        use super::super::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// Strategy for `Option`s from [`of`].
        pub struct OptionStrategy<S> {
            inner: S,
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                // Upstream defaults to `Some` half the time.
                if rng.gen_range(0..2) == 0 {
                    None
                } else {
                    Some(self.inner.generate(rng))
                }
            }
        }

        /// An `Option` strategy (mirrors `proptest::option::of`).
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }
    }
}

/// Deterministic per-case RNG keyed on source location and case index.
pub fn test_rng(file: &str, line: u32, case: u32) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in file.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^= (line as u64) << 32 | case as u64;
    StdRng::seed_from_u64(h)
}

/// Asserts a property-test condition (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts property-test equality (no shrinking: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Declares property tests: each `fn` becomes a `#[test]` that samples its
/// arguments from their strategies for every case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..cfg.cases {
                let mut __rng = $crate::test_rng(file!(), line!(), __case);
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)*
                // The body runs per case; a panic reports the failing case.
                let run = || $body;
                run();
            }
        }
    )*};
}

/// Declares a function returning a composed strategy. Supports proptest's
/// one- and two-group (dependent) forms.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($arg:ident : $argty:ty),* $(,)?)
        ($($pat1:pat in $strat1:expr),* $(,)?)
        $(($($pat2:pat in $strat2:expr),* $(,)?))?
        -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($arg: $argty),*) -> impl $crate::Strategy<Value = $ret> {
            $crate::fn_strategy(move |__rng| {
                $(let $pat1 = $crate::Strategy::generate(&($strat1), __rng);)*
                $($(let $pat2 = $crate::Strategy::generate(&($strat2), __rng);)*)?
                $body
            })
        }
    };
}

pub mod prelude {
    //! The glob-import surface (`use proptest::prelude::*`).

    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_compose, proptest, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = super::test_rng("lib.rs", 1, 0);
        for _ in 0..100 {
            let x = (0.0..10.0f64).generate(&mut rng);
            assert!((0.0..10.0).contains(&x));
            let (a, b) = (1..5usize, -2.0..=2.0f64).generate(&mut rng);
            assert!((1..5).contains(&a));
            assert!((-2.0..=2.0).contains(&b));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = super::test_rng("lib.rs", 2, 0);
        let s = prop::collection::vec(0.0..1.0f64, 3..7);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!((3..7).contains(&v.len()));
        }
        let fixed = prop::collection::vec(0..9usize, 4usize);
        assert_eq!(fixed.generate(&mut rng).len(), 4);
    }

    #[test]
    fn option_strategy_hits_both_variants() {
        let mut rng = super::test_rng("lib.rs", 4, 0);
        let s = prop::option::of(0..10u64);
        let (mut none, mut some) = (0, 0);
        for _ in 0..100 {
            match s.generate(&mut rng) {
                None => none += 1,
                Some(x) => {
                    assert!(x < 10);
                    some += 1;
                }
            }
        }
        assert!(none > 10 && some > 10, "none={none} some={some}");
    }

    #[test]
    fn map_and_just() {
        let mut rng = super::test_rng("lib.rs", 3, 0);
        let doubled = (1..10u64).prop_map(|x| x * 2);
        for _ in 0..20 {
            assert_eq!(doubled.generate(&mut rng) % 2, 0);
        }
        assert_eq!(Just(7usize).generate(&mut rng), 7);
    }

    #[test]
    fn generation_is_deterministic_per_location() {
        let s = prop::collection::vec(0.0..100.0f64, 5..20);
        let a = s.generate(&mut super::test_rng("f", 9, 3));
        let b = s.generate(&mut super::test_rng("f", 9, 3));
        assert_eq!(a, b);
        let c = s.generate(&mut super::test_rng("f", 9, 4));
        assert_ne!(a, c);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn the_macro_itself_works(x in 0.0..1.0f64, v in prop::collection::vec(0..5usize, 1..4)) {
            prop_assert!(x < 1.0);
            prop_assert!(!v.is_empty() && v.len() < 4);
        }
    }

    prop_compose! {
        fn pair()(a in 0..100u64, b in 0..100u64)(
            sum in Just(a + b),
            a in Just(a),
            b in Just(b),
        ) -> (u64, u64, u64) {
            (a, b, sum)
        }
    }

    proptest! {
        #[test]
        fn composed_strategies_depend_correctly((a, b, sum) in pair()) {
            prop_assert_eq!(a + b, sum);
        }
    }
}
