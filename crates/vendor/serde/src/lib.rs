//! Offline shim of the `serde` API surface the workspace uses.
//!
//! Unlike upstream serde's visitor architecture, this shim round-trips
//! every value through a self-describing [`Value`] tree — exactly what a
//! JSON-only workspace needs, at a fraction of the machinery. The derive
//! macros (re-exported from the in-repo `serde_derive`) generate
//! [`Serialize`]/[`Deserialize`] impls that follow serde's externally
//! tagged conventions, so the on-disk JSON looks identical to what upstream
//! serde would produce:
//!
//! * named struct → object,
//! * unit enum variant → `"Variant"`,
//! * data-carrying variant → `{"Variant": ...}`,
//! * `#[serde(default)]` fields may be absent.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A self-describing serialized value (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number. Integers up to 2⁵³ round-trip exactly; the workspace's
    /// counters stay far below that.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// A deserialization failure: what was expected and what was found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

impl DeError {
    /// A "expected X, found Y" error.
    pub fn expected(what: &str, found: &Value) -> Self {
        let kind = match found {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        };
        DeError(format!("expected {what}, found {kind}"))
    }
}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    /// Serializes `self` as a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Conversion from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`] tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// A `Value` serializes as itself — lets callers embed already-parsed JSON
// trees inside larger serialized structures (and extract them back).
impl Serialize for Value {
    #[inline]
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    #[inline]
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

// ---- primitive impls ------------------------------------------------------

macro_rules! impl_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            #[inline]
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            #[inline]
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(n) => Ok(*n as $t),
                    _ => Err(DeError::expected(stringify!($t), v)),
                }
            }
        }
    )*};
}

impl_num!(f32, f64, i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Serialize for bool {
    #[inline]
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    #[inline]
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", v)),
        }
    }
}

impl Serialize for String {
    #[inline]
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    #[inline]
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", v)),
        }
    }
}

impl Serialize for str {
    #[inline]
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    #[inline]
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::expected("array", v)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const LEN: usize = [$($idx),+].len();
                match v {
                    Value::Arr(items) if items.len() == LEN => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    _ => Err(DeError::expected("tuple array", v)),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Obj(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Obj(pairs) => {
                pairs.iter().map(|(k, v)| Ok((k.clone(), V::from_value(v)?))).collect()
            }
            _ => Err(DeError::expected("object", v)),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys so serialization is deterministic.
        let mut pairs: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Obj(pairs)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Obj(pairs) => {
                pairs.iter().map(|(k, v)| Ok((k.clone(), V::from_value(v)?))).collect()
            }
            _ => Err(DeError::expected("object", v)),
        }
    }
}

// ---- derive support helpers ----------------------------------------------

/// Looks up a required struct field (derive-generated code calls this).
pub fn de_field<T: Deserialize>(v: &Value, key: &str) -> Result<T, DeError> {
    match v.get(key) {
        Some(f) => T::from_value(f),
        None => Err(DeError(format!("missing field `{key}`"))),
    }
}

/// Looks up an optional (`#[serde(default)]`) struct field.
pub fn de_field_or_default<T: Deserialize + Default>(v: &Value, key: &str) -> Result<T, DeError> {
    match v.get(key) {
        Some(f) => T::from_value(f),
        None => Ok(T::default()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(f64::from_value(&3.5f64.to_value()).unwrap(), 3.5);
        assert_eq!(usize::from_value(&7usize.to_value()).unwrap(), 7);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(String::from_value(&"hi".to_string().to_value()).unwrap(), "hi");
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1.0f64, 2.0, 3.0];
        assert_eq!(Vec::<f64>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<u64> = Some(9);
        assert_eq!(Option::<u64>::from_value(&o.to_value()).unwrap(), o);
        assert_eq!(Option::<u64>::from_value(&Value::Null).unwrap(), None);
        let t = (1.0f64, 2usize);
        assert_eq!(<(f64, usize)>::from_value(&t.to_value()).unwrap(), t);
    }

    #[test]
    fn type_mismatch_is_an_error() {
        assert!(f64::from_value(&Value::Str("x".into())).is_err());
        assert!(Vec::<f64>::from_value(&Value::Num(1.0)).is_err());
        assert!(de_field::<f64>(&Value::Obj(vec![]), "missing").is_err());
    }

    #[test]
    fn default_field_helper() {
        let v = Value::Obj(vec![("a".into(), Value::Num(4.0))]);
        assert_eq!(de_field_or_default::<f64>(&v, "a").unwrap(), 4.0);
        assert_eq!(de_field_or_default::<f64>(&v, "b").unwrap(), 0.0);
    }
}
