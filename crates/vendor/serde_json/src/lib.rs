//! Offline shim of the `serde_json` API surface the workspace uses:
//! [`to_string`], [`to_string_pretty`] and [`from_str`], over the vendored
//! `serde` shim's [`Value`] data model.

pub use serde::Value;

use std::fmt;

/// A serialization or parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

// ---- writing --------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_num(out: &mut String, n: f64) {
    if n.is_finite() {
        if n == n.trunc() && n.abs() < 9.0e15 {
            // Integral values print without a fraction, like upstream.
            out.push_str(&format!("{}", n as i64));
        } else {
            // `{:?}` is the shortest representation that round-trips f64.
            out.push_str(&format!("{n:?}"));
        }
    } else {
        // JSON has no Inf/NaN; upstream errors here, null is our pragmatic
        // stand-in (the workspace never serializes non-finite values).
        out.push_str("null");
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => write_num(out, *n),
        Value::Str(s) => write_escaped(out, s),
        Value::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(w) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(w * (level + 1)));
                }
                write_value(out, item, indent, level + 1);
            }
            if let Some(w) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(w * level));
            }
            out.push(']');
        }
        Value::Obj(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(w) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(w * (level + 1)));
                }
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            if let Some(w) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(w * level));
            }
            out.push('}');
        }
    }
}

/// Serializes a value to compact JSON.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to two-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

// ---- parsing --------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_keyword(&mut self, kw: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number bytes"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err(&format!("invalid number `{text}`")))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| self.err("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not needed by the
                            // workspace's own writer (it never emits them).
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

/// Parses JSON text into a [`Value`] tree.
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

/// Deserializes a value from JSON text.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    Ok(T::from_value(&parse_value(s)?)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<u64>(" 42 ").unwrap(), 42);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<Option<f64>>("null").unwrap(), None);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1.0f64, 2.25, -3.0];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2.25,-3]");
        assert_eq!(from_str::<Vec<f64>>(&json).unwrap(), v);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "a\"b\\c\nd\te\u{1}f".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn float_precision_survives() {
        for &x in &[0.1, 1.0 / 3.0, f64::MAX / 2.0, 1e-300, -0.0] {
            let json = to_string(&x).unwrap();
            assert_eq!(from_str::<f64>(&json).unwrap(), x, "{json}");
        }
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = vec![vec![1.0f64], vec![], vec![2.0, 3.0]];
        let json = to_string_pretty(&v).unwrap();
        assert!(json.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<f64>>>(&json).unwrap(), v);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<f64>("[1").is_err());
        assert!(from_str::<f64>("1 trailing").is_err());
        assert!(from_str::<Vec<f64>>("{\"a\":1}").is_err());
    }
}
