//! Offline shim of the `criterion` API surface the workspace's benches use.
//!
//! A compact wall-clock harness behind criterion's bench-definition API:
//! `criterion_group!`/`criterion_main!`, benchmark groups, `bench_function`
//! / `bench_with_input`, `BenchmarkId`, and `Bencher::iter`. Each benchmark
//! is warmed up, then timed over adaptively chosen batches; the harness
//! reports min/mean/median nanoseconds per iteration.
//!
//! Extras the real criterion doesn't have:
//!
//! * `--quick` (as passed by CI) shrinks sample counts,
//! * a positional CLI filter substring-matches benchmark ids,
//! * setting `PERPETUUM_BENCH_JSON=<path>` writes all results as a JSON
//!   array — the workspace's committed `BENCH_*.json` files come from this.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// One measured benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Full id, `group/function` or `group/function/param`.
    pub id: String,
    /// Iterations measured (after warm-up).
    pub iters: u64,
    /// Minimum observed time per iteration (ns).
    pub min_ns: f64,
    /// Mean time per iteration (ns).
    pub mean_ns: f64,
    /// Median time per iteration (ns).
    pub median_ns: f64,
}

/// The benchmark driver (parses CLI args, collects results).
pub struct Criterion {
    filter: Option<String>,
    quick: bool,
    results: Vec<BenchResult>,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { filter: None, quick: false, results: Vec::new(), sample_size: 60 }
    }
}

impl Criterion {
    /// Builds a driver from `cargo bench` CLI arguments. Criterion-specific
    /// flags are accepted and ignored where they have no shim equivalent.
    pub fn from_args() -> Self {
        let mut c = Self::default();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => c.quick = true,
                "--bench" | "--test" => {}
                s if s.starts_with("--") => {
                    // Flags with a value (e.g. --save-baseline x): skip it.
                    if !s.contains('=') {
                        let _ = args.next();
                    }
                }
                s => c.filter = Some(s.to_string()),
            }
        }
        c
    }

    /// Default number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { c: self, name: name.into(), sample_size: None }
    }

    /// Runs an ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchId, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        self.run_one(id.into_bench_id(), sample_size, f);
    }

    fn run_one<F>(&mut self, id: String, sample_size: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let samples = if self.quick { sample_size.div_ceil(6).max(3) } else { sample_size };
        let mut b = Bencher { samples, per_iter_ns: Vec::new() };
        f(&mut b);
        let mut times = b.per_iter_ns;
        if times.is_empty() {
            return;
        }
        times.sort_by(|a, b| a.partial_cmp(b).expect("bench times are finite"));
        let iters = times.len() as u64;
        let min_ns = times[0];
        let mean_ns = times.iter().sum::<f64>() / times.len() as f64;
        let median_ns = times[times.len() / 2];
        println!(
            "bench: {id:<60} min {:>12}  mean {:>12}  median {:>12}",
            fmt_ns(min_ns),
            fmt_ns(mean_ns),
            fmt_ns(median_ns)
        );
        self.results.push(BenchResult { id, iters, min_ns, mean_ns, median_ns });
    }

    /// Prints the run summary; honours `PERPETUUM_BENCH_JSON`.
    pub fn final_report(&self) {
        println!("\n{} benchmarks measured", self.results.len());
        if let Ok(path) = std::env::var("PERPETUUM_BENCH_JSON") {
            let mut out = String::from("[\n");
            for (i, r) in self.results.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&format!(
                    "  {{\"id\": {:?}, \"iters\": {}, \"min_ns\": {:.1}, \"mean_ns\": {:.1}, \"median_ns\": {:.1}}}",
                    r.id, r.iters, r.min_ns, r.mean_ns, r.median_ns
                ));
            }
            out.push_str("\n]\n");
            if let Err(e) = std::fs::write(&path, out) {
                eprintln!("failed to write {path}: {e}");
            } else {
                println!("results written to {path}");
            }
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'c> {
    c: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchId, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_bench_id());
        let samples = self.sample_size.unwrap_or(self.c.sample_size);
        self.c.run_one(full, samples, f);
    }

    /// Runs a benchmark receiving a reference to `input`.
    pub fn bench_with_input<I, F>(&mut self, id: impl IntoBenchId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input));
    }

    /// Ends the group (kept for API parity; nothing to flush).
    pub fn finish(&mut self) {}
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId {
    inner: String,
}

impl BenchmarkId {
    /// `name/parameter`, criterion's parameterized-benchmark id.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        Self { inner: format!("{name}/{parameter}") }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self { inner: format!("{parameter}") }
    }
}

/// Conversion into a benchmark id string.
pub trait IntoBenchId {
    /// The id as text.
    fn into_bench_id(self) -> String;
}

impl IntoBenchId for BenchmarkId {
    fn into_bench_id(self) -> String {
        self.inner
    }
}

impl IntoBenchId for &str {
    fn into_bench_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchId for String {
    fn into_bench_id(self) -> String {
        self
    }
}

/// Times closures for one benchmark.
pub struct Bencher {
    samples: usize,
    per_iter_ns: Vec<f64>,
}

impl Bencher {
    /// Measures `f`, recording per-iteration wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and batch-size calibration: aim for batches of ≥ ~1 ms so
        // timer resolution stays below 0.1%.
        let mut batch = 1u64;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = t.elapsed().as_nanos() as f64;
            if elapsed >= 1_000_000.0 || batch >= 1 << 20 {
                break;
            }
            batch *= 4;
        }
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = t.elapsed().as_nanos() as f64;
            self.per_iter_ns.push(elapsed / batch as f64);
        }
    }
}

/// Declares a benchmark group function (criterion API parity).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $($group(&mut c);)+
            c.final_report();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion::default().sample_size(5);
        let mut group = c.benchmark_group("g");
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        assert_eq!(c.results.len(), 2);
        assert_eq!(c.results[0].id, "g/noop");
        assert_eq!(c.results[1].id, "g/sum/10");
        assert!(c.results.iter().all(|r| r.min_ns > 0.0 && r.min_ns <= r.mean_ns * 1.001));
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion { filter: Some("keep".into()), ..Criterion::default() };
        let mut g = c.benchmark_group("g");
        g.bench_function("keep_me", |b| b.iter(|| 1));
        g.bench_function("drop_me", |b| b.iter(|| 1));
        g.finish();
        assert_eq!(c.results.len(), 1);
        assert_eq!(c.results[0].id, "g/keep_me");
    }
}
