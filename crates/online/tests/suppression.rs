//! Controller-level suppression equivalence: a fleet of `SensorClient`s
//! feeding `ingest_events` must produce a byte-identical plan sequence to
//! full per-slot streaming into `ingest` — the state-reconstruction
//! invariant the edge-suppression subsystem rests on. (The serve layer
//! re-proves this end-to-end over HTTP in `suppression_prop.rs`; this test
//! pins the controller half in isolation with a deterministic drift trace.)

use std::collections::HashSet;

use perpetuum_client::SensorClient;
use perpetuum_core::network::Network;
use perpetuum_geom::Point2;
use perpetuum_online::{
    ClassEvent, EventBatch, OnlineConfig, OnlineController, OnlineError, TelemetryBatch,
    TelemetryRecord,
};

const EPS: f64 = 1e-9;
const HORIZON: f64 = 100.0;

/// 5 sensors on a line, one depot. Cycles 4, 5.5, 6.5, 13, 14 →
/// τ₁ = 4, classes [0, 0, 0, 1, 1].
fn world() -> (Network, Vec<f64>, Vec<f64>) {
    let sensors = vec![(0.0, 0.0), (10.0, 0.0), (20.0, 0.0), (30.0, 0.0), (40.0, 0.0)]
        .into_iter()
        .map(|(x, y)| Point2::new(x, y))
        .collect();
    let depots = vec![Point2::new(20.0, 30.0)];
    let network = Network::new(sensors, depots);
    let cycles = [4.0, 5.5, 6.5, 13.0, 14.0];
    let rates: Vec<f64> = cycles.iter().map(|c| 1.0 / c).collect();
    (network, vec![1.0; 5], rates)
}

fn controller(margin: f64) -> OnlineController {
    let (network, caps, rates) = world();
    let cfg = OnlineConfig::new(HORIZON).with_margin(margin);
    OnlineController::new(network, caps, rates, cfg).expect("valid controller")
}

/// Every `(time, sensor)` charge the current schedule implies — the
/// physical charger arrivals an edge sensor would witness.
fn schedule_charges(ctl: &OnlineController) -> Vec<(f64, usize)> {
    let mut out = Vec::new();
    for d in ctl.series().dispatches() {
        for &i in ctl.series().sets()[d.set].sensors() {
            out.push((d.time, i));
        }
    }
    out.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    out
}

/// Apply all not-yet-applied charges with time ≤ `limit` to the clients.
fn apply_charges(
    charges: &[(f64, usize)],
    applied: &mut HashSet<(u64, usize)>,
    clients: &mut [SensorClient],
    limit: f64,
) {
    for &(time, i) in charges {
        if time <= limit && applied.insert((time.to_bits(), i)) {
            clients[i].recharged(time);
        }
    }
}

fn refresh_plans(ctl: &OnlineController, clients: &mut [SensorClient]) {
    let tau1 = ctl.tau1();
    for (i, c) in clients.iter_mut().enumerate() {
        c.plan_update(tau1, ctl.assigned_cycles()[i]);
    }
}

/// The deterministic drift trace: sensors 0–2 drain 1.5%/slot faster each
/// slot (eventually undercutting τ₁ → full replans → the sync protocol),
/// sensors 3–4 wobble ±1% (pure suppression fodder).
fn rate_at(base: &[f64], sensor: usize, slot: u32) -> f64 {
    if sensor < 3 {
        base[sensor] * 1.015f64.powi(slot as i32)
    } else if slot.is_multiple_of(2) {
        base[sensor] * 1.01
    } else {
        base[sensor] * 0.99
    }
}

#[test]
fn suppressed_events_match_streaming_byte_for_byte() {
    let margin = 0.1;
    let mut streaming = controller(margin);
    let mut suppressed = controller(margin);
    assert_eq!(streaming.plan_json(), suppressed.plan_json(), "identical seeds");

    let (_, caps, base_rates) = world();
    let mut clients: Vec<SensorClient> = base_rates
        .iter()
        .zip(&caps)
        .map(|(&r, &cap)| SensorClient::new(0.5, margin, HORIZON, cap, r))
        .collect();
    refresh_plans(&suppressed, &mut clients);

    let mut charges = schedule_charges(&suppressed);
    let mut applied = HashSet::new();
    // Construction may already have executed a repair dispatch at t = 0.
    apply_charges(&charges, &mut applied, &mut clients, EPS);

    let mut syncs = 0u32;
    for slot in 1..=60u32 {
        let t = f64::from(slot);
        apply_charges(&charges, &mut applied, &mut clients, t - EPS);

        // Sensors observe; most slots are suppressed client-side.
        let mut events = Vec::new();
        let mut rates = Vec::new();
        for (i, c) in clients.iter_mut().enumerate() {
            let rate = rate_at(&base_rates, i, slot);
            rates.push(rate);
            if let Some(s) = c.observe(t, rate) {
                events.push(ClassEvent::new(i, s.rho_hat, s.last_rate, s.level));
            }
        }

        // Streaming arm: the full per-slot batch.
        let records: Vec<TelemetryRecord> =
            rates.iter().enumerate().map(|(i, &r)| TelemetryRecord::rate(i, r)).collect();
        streaming.ingest(&TelemetryBatch { time: t, records }).expect("streaming ingest");

        // Suppressed arm: events only (an empty batch is a clock tick so
        // the two controllers stay comparable at every slot).
        let batch = EventBatch::new(t, events);
        match suppressed.ingest_events(&batch) {
            Ok(_) => {}
            Err(OnlineError::SyncRequired) => {
                syncs += 1;
                // Refusal must be mutation-free.
                assert_eq!(suppressed.now(), f64::from(slot - 1).max(0.0), "no clock advance");
                // Retry with the fleet-wide state snapshot.
                let all: Vec<ClassEvent> = clients
                    .iter_mut()
                    .enumerate()
                    .map(|(i, c)| {
                        let s = c.state();
                        if !batch.events.iter().any(|e| e.sensor == i) {
                            c.record_sync();
                        }
                        ClassEvent::new(i, s.rho_hat, s.last_rate, s.level)
                    })
                    .collect();
                let sync = EventBatch { time: t, sync: true, events: all, observed: 0, sent: 0 };
                suppressed.ingest_events(&sync).expect("sync ingest");
            }
            Err(e) => panic!("unexpected ingest_events error: {e}"),
        }

        // Downlink: fresh plan + the (possibly revised) charge schedule.
        refresh_plans(&suppressed, &mut clients);
        charges = schedule_charges(&suppressed);
        apply_charges(&charges, &mut applied, &mut clients, t + EPS);

        assert_eq!(
            streaming.plan_json(),
            suppressed.plan_json(),
            "plan sequences diverged at slot {slot}"
        );
    }

    // The trace must actually exercise the machinery it claims to pin.
    assert!(syncs >= 1, "drift trace never hit the sync protocol");
    assert!(suppressed.full_replans() >= 2, "no drift-triggered full replan");
    let observed: u64 = clients.iter().map(|c| c.observed()).sum();
    let sent: u64 = clients.iter().map(|c| c.sent()).sum();
    assert!(sent * 2 < observed, "suppression too weak: {sent}/{observed} frames sent");
}

#[test]
fn sync_required_refusal_leaves_controller_untouched() {
    let mut ctl = controller(0.0);
    let rev = ctl.revision();
    let calls = ctl.planner_calls();
    // Sensor 0 doubles its rate: τ̂ = 2 < τ₁ = 4 → full tier → refusal.
    let batch = EventBatch::new(1.0, vec![ClassEvent::new(0, 0.5, 0.5, 0.9)]);
    assert_eq!(ctl.ingest_events(&batch).expect_err("needs sync"), OnlineError::SyncRequired);
    assert_eq!(ctl.revision(), rev, "refusal must not mutate the plan");
    assert_eq!(ctl.planner_calls(), calls);
    assert_eq!(ctl.now(), 0.0, "refusal must not advance the clock");
    // A time-0 batch still works: nothing was half-applied.
    ctl.ingest_events(&EventBatch::new(0.0, vec![])).expect("clock intact");
}

#[test]
fn sync_batch_must_cover_every_sensor() {
    let mut ctl = controller(0.0);
    let partial = EventBatch {
        time: 1.0,
        sync: true,
        events: vec![ClassEvent::new(0, 0.25, 0.25, 0.9)],
        observed: 0,
        sent: 0,
    };
    assert_eq!(
        ctl.ingest_events(&partial).expect_err("partial sync"),
        OnlineError::LengthMismatch { field: "sync_events", expected: 5, got: 1 }
    );
}

#[test]
fn event_validation_is_typed() {
    let mut ctl = controller(0.0);
    let bad = |e: ClassEvent| EventBatch::new(1.0, vec![e]);
    assert_eq!(
        ctl.ingest_events(&bad(ClassEvent::new(9, 0.1, 0.1, 0.5))).expect_err("sensor"),
        OnlineError::UnknownSensor { sensor: 9, n: 5 }
    );
    assert!(matches!(
        ctl.ingest_events(&bad(ClassEvent::new(0, f64::NAN, 0.1, 0.5))).expect_err("rho"),
        OnlineError::NonFinite { field: "rho_hat", .. }
    ));
    assert!(matches!(
        ctl.ingest_events(&bad(ClassEvent::new(0, 0.1, -0.1, 0.5))).expect_err("rate"),
        OnlineError::NotPositive { field: "last_rate", .. }
    ));
    assert!(matches!(
        ctl.ingest_events(&bad(ClassEvent::new(0, 0.1, 0.1, f64::INFINITY))).expect_err("level"),
        OnlineError::NonFinite { field: "level", .. }
    ));
    assert_eq!(ctl.now(), 0.0, "rejected batches leave the clock untouched");
}

#[test]
fn in_band_event_is_adopted_without_replanning() {
    let mut ctl = controller(0.0);
    let calls = ctl.planner_calls();
    let rev = ctl.revision();
    // Sensor 1 (τ 5.5, assigned 4): report a state with τ̂ = 5 — in band.
    let batch = EventBatch::new(1.0, vec![ClassEvent::new(1, 0.2, 0.2, 0.8)]);
    let report = ctl.ingest_events(&batch).expect("ingest");
    assert_eq!(report.class_changes, 0);
    assert_eq!(report.planner_calls, 0);
    assert_eq!(ctl.planner_calls(), calls);
    assert_eq!(ctl.revision(), rev);
    // The adopted state is visible: level estimate reflects the event.
    assert!((ctl.level_estimate(1) - 0.8).abs() < 1e-12);
}

#[test]
fn charge_log_records_applied_charges() {
    let mut ctl = controller(0.0);
    ctl.set_charge_log(true);
    assert!(ctl.take_charges().is_empty(), "enabling starts a fresh log");
    // Advance past τ₁ = 4: the first dispatch executes and charges D_0.
    ctl.ingest(&TelemetryBatch::tick(4.5)).expect("tick");
    let charges = ctl.take_charges();
    assert!(!charges.is_empty(), "dispatch at τ₁ must have charged someone");
    assert!(charges.iter().all(|&(t, _)| (t - 4.0).abs() < EPS));
    assert!(ctl.take_charges().is_empty(), "drained");
    ctl.set_charge_log(false);
    ctl.ingest(&TelemetryBatch::tick(8.5)).expect("tick");
    assert!(ctl.take_charges().is_empty(), "disabled log stays empty");
}
