//! Property: the controller is a pure function of its construction
//! arguments and the telemetry stream — two controllers fed the same
//! batches emit byte-identical plan JSON and identical ingest reports
//! after every single batch. This is the reproducibility contract the
//! serve layer's session API and the closed-loop sim harness rely on.

use perpetuum_core::network::Network;
use perpetuum_geom::Point2;
use perpetuum_online::{OnlineConfig, OnlineController, TelemetryBatch, TelemetryRecord};
use proptest::prelude::*;

const N: usize = 8;
const HORIZON: f64 = 200.0;

fn build() -> OnlineController {
    let sensors =
        (0..N).map(|i| Point2::new(10.0 * i as f64, if i % 2 == 0 { 0.0 } else { 25.0 })).collect();
    let depots = vec![Point2::new(35.0, 60.0), Point2::new(0.0, -30.0)];
    let network = Network::new(sensors, depots);
    // Cycles 4..18 → a two-class partition with headroom for drift.
    let rates: Vec<f64> = (0..N).map(|i| 1.0 / (4.0 + 2.0 * i as f64)).collect();
    OnlineController::new(network, vec![1.0; N], rates, OnlineConfig::new(HORIZON))
        .expect("valid controller")
}

/// A random but valid telemetry stream: strictly forward-moving batch
/// times, each batch touching a random subset of sensors with random rate
/// samples and/or level readings.
fn stream_strategy() -> impl Strategy<Value = Vec<TelemetryBatch>> {
    let record = (0..N, 0.02f64..0.6, 0.0f64..1.0, 0u8..3).prop_map(
        |(sensor, rate, level, kind)| match kind {
            0 => TelemetryRecord::rate(sensor, rate),
            1 => TelemetryRecord::level(sensor, level),
            _ => TelemetryRecord::full(sensor, rate, level),
        },
    );
    let batch = (0.1f64..5.0, prop::collection::vec(record, 0..6));
    prop::collection::vec(batch, 1..12).prop_map(|raw| {
        let mut t = 0.0;
        raw.into_iter()
            .map(|(dt, records)| {
                t += dt;
                TelemetryBatch { time: t, records }
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn same_stream_yields_byte_identical_plan_sequence(stream in stream_strategy()) {
        let mut a = build();
        let mut b = build();
        prop_assert_eq!(a.plan_json(), b.plan_json(), "initial plans diverge");
        for (step, batch) in stream.iter().enumerate() {
            let ra = a.ingest(batch).expect("ingest a");
            let rb = b.ingest(batch).expect("ingest b");
            prop_assert_eq!(ra, rb, "reports diverge at step {}", step);
            prop_assert_eq!(
                a.plan_json(), b.plan_json(),
                "plan JSON diverges at step {}", step
            );
        }
    }

    /// The stream also fully determines the *executed* trajectory: replays
    /// of the pending series agree dispatch-for-dispatch.
    #[test]
    fn pending_series_is_reproducible(stream in stream_strategy()) {
        let mut a = build();
        let mut b = build();
        for batch in &stream {
            a.ingest(batch).expect("ingest a");
            b.ingest(batch).expect("ingest b");
            let pa = a.pending_series(batch.time);
            let pb = b.pending_series(batch.time);
            prop_assert_eq!(pa.dispatch_count(), pb.dispatch_count());
            for (da, db) in pa.dispatches().iter().zip(pb.dispatches()) {
                prop_assert_eq!(da.time, db.time);
                prop_assert_eq!(da.set, db.set);
            }
        }
    }
}
