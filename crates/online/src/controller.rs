//! Deterministic closed-loop scheduling controller.
//!
//! [`OnlineController`] wraps a variable-cycle charging plan (paper §V,
//! Algorithm 3 + the `V^a` repair) with a streaming telemetry loop:
//!
//! 1. **Rate tracking** — every reported rate sample feeds a per-sensor
//!    [`EwmaPredictor`]; the working estimate is the pessimistic
//!    `max(predicted, last observed)` so the controller never plans a longer
//!    cycle than the freshest sample justifies.
//! 2. **Drift detection** — a batch invalidates the running plan only if a
//!    *touched* sensor's achievable cycle `τ̂_i` leaves the power-of-two
//!    applicability band `[τ'_i, 2·τ'_i)` of its scheduled cycle. In-band
//!    wobble is absorbed with **zero planner invocations**.
//! 3. **Incremental replanning** — when only rounding classes shift (and
//!    `τ₁`/`K` survive), the affected cumulative sets `D_k` are *spliced*
//!    by the persistent [`IncrementalPlanner`] (bounded candidate-edge
//!    forest surgery + warm-started tour repair) and future dispatches are
//!    retargeted in place; the dispatch timeline is untouched. A `τ₁`
//!    undercut or a class-structure change falls back to a full
//!    Algorithm-3 round with `V^a` repair, which re-seeds the planner.
//! 4. **Emergency dispatch** — a min-heap of predicted death times (same
//!    shape as the simulator's death-prediction queue) is checked after
//!    every batch; a sensor whose predicted death precedes its next
//!    scheduled visit gets an immediate rescue tour appended at `now`.
//!
//! The controller is pure state-machine: no clocks, no RNG, no I/O. The
//! same construction arguments and telemetry stream therefore produce a
//! byte-identical plan sequence (pinned by `tests/determinism.rs`).
//!
//! Stale *modified* repair sets from an earlier full replan are not
//! rewritten by later incremental rounds — if drift makes one insufficient,
//! the deadline queue catches the affected sensor and issues a rescue
//! dispatch, so safety never depends on repair-set freshness.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

use perpetuum_core::incremental::{IncrementalConfig, IncrementalPlanner};
use perpetuum_core::network::Network;
use perpetuum_core::recovery::degraded_tour_set;
use perpetuum_core::refine::{refine, Budget};
use perpetuum_core::rounding::power_class;
use perpetuum_core::schedule::ScheduleSeries;
use perpetuum_core::var::{replan_variable_detailed, RepairStrategy, VarInput};
use perpetuum_energy::predictor::{schedule_still_applicable, EwmaPredictor};
use serde::{Serialize, Value};

use crate::events::EventBatch;
use crate::telemetry::TelemetryBatch;

/// Comparison slack for dispatch times, matching the sim engine's epsilon.
const EPS: f64 = 1e-9;

/// Base seed for full-replan refinement, xor-folded with the replan
/// counter so every round walks a fresh (but reproducible) trajectory.
const REFINE_SEED: u64 = 0x5EED_0F12_3456_789A;

/// Typed ingest/construction failures. The serve layer maps these onto
/// HTTP 4xx bodies; the sim harness treats any of them as a bug.
#[derive(Debug, Clone, PartialEq)]
pub enum OnlineError {
    /// The network has no sensors.
    EmptyNetwork,
    /// The network has no depots — nothing can ever be dispatched.
    NoChargers,
    /// A configuration field is outside its valid range.
    BadConfig { field: &'static str, value: f64 },
    /// A per-sensor vector does not have one entry per sensor.
    LengthMismatch { field: &'static str, expected: usize, got: usize },
    /// A numeric field is NaN or infinite.
    NonFinite { field: &'static str, value: f64 },
    /// A numeric field must be positive (or non-negative) and is not.
    NotPositive { field: &'static str, value: f64 },
    /// Batch time runs backwards relative to the controller clock.
    TimeNotMonotone { time: f64, now: f64 },
    /// A record names a sensor outside `0..n`.
    UnknownSensor { sensor: usize, n: usize },
    /// A suppressed-event batch would trigger a *full* replan, whose new
    /// `τ₁` grid depends on every sensor's current estimate — the client
    /// fleet must retry with a sync batch covering all sensors. The
    /// controller is left untouched (nothing was ingested).
    SyncRequired,
}

impl fmt::Display for OnlineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyNetwork => write!(f, "network has no sensors"),
            Self::NoChargers => write!(f, "network has no depots/chargers"),
            Self::BadConfig { field, value } => {
                write!(f, "config field `{field}` out of range: {value}")
            }
            Self::LengthMismatch { field, expected, got } => {
                write!(f, "`{field}` must have {expected} entries, got {got}")
            }
            Self::NonFinite { field, value } => {
                write!(f, "`{field}` must be finite, got {value}")
            }
            Self::NotPositive { field, value } => {
                write!(f, "`{field}` must be positive, got {value}")
            }
            Self::TimeNotMonotone { time, now } => {
                write!(f, "batch time {time} precedes controller clock {now}")
            }
            Self::UnknownSensor { sensor, n } => {
                write!(f, "sensor {sensor} out of range (n = {n})")
            }
            Self::SyncRequired => {
                write!(f, "full replan required: retry with a sync batch covering all sensors")
            }
        }
    }
}

impl std::error::Error for OnlineError {}

/// Controller tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineConfig {
    /// Monitoring period end `T` (same clock as batch times).
    pub horizon: f64,
    /// EWMA discount for the per-sensor rate predictors.
    pub gamma: f64,
    /// Local-search rounds per re-routed tour (0 = paper construction).
    pub polish_rounds: usize,
    /// Safety margin in `[0, 1)`: achievable cycles and residual lifetimes
    /// are shrunk by `1 - margin` before planning, trading service cost for
    /// robustness to under-reported rates. The same margin doubles as
    /// replan *hysteresis* — see [`OnlineController`]'s band test — so
    /// under steady upward drift the replan cadence is
    /// `log(1/(1-margin)) / log(1+drift)` slots instead of every slot.
    pub margin: f64,
    /// Extra head start (time units) required between a predicted death and
    /// the next scheduled visit before the visit counts as "in time".
    pub emergency_slack: f64,
    /// Anytime-refinement step budget applied to every *full* replan's
    /// fresh plan (`perpetuum_core::refine`; 0 = constructive plans
    /// only). Refinement is seeded from the replan counter, so the
    /// controller stays byte-deterministic. Incremental splices are not
    /// refined — their point is to be cheap.
    pub refine_steps: u64,
}

impl OnlineConfig {
    /// Paper-default controller over a monitoring period of `horizon`.
    pub fn new(horizon: f64) -> Self {
        Self {
            horizon,
            gamma: EwmaPredictor::DEFAULT_GAMMA,
            polish_rounds: 0,
            margin: 0.0,
            emergency_slack: 0.0,
            refine_steps: 0,
        }
    }

    /// Override the EWMA discount.
    pub fn with_gamma(mut self, gamma: f64) -> Self {
        self.gamma = gamma;
        self
    }

    /// Override the planning safety margin.
    pub fn with_margin(mut self, margin: f64) -> Self {
        self.margin = margin;
        self
    }

    /// Override the emergency head-start slack.
    pub fn with_emergency_slack(mut self, slack: f64) -> Self {
        self.emergency_slack = slack;
        self
    }

    /// Override tour polishing rounds.
    pub fn with_polish_rounds(mut self, rounds: usize) -> Self {
        self.polish_rounds = rounds;
        self
    }

    /// Override the full-replan refinement budget.
    pub fn with_refine_steps(mut self, steps: u64) -> Self {
        self.refine_steps = steps;
        self
    }

    fn validate(&self) -> Result<(), OnlineError> {
        if !self.horizon.is_finite() {
            return Err(OnlineError::NonFinite { field: "horizon", value: self.horizon });
        }
        if self.horizon <= 0.0 {
            return Err(OnlineError::NotPositive { field: "horizon", value: self.horizon });
        }
        if !(self.gamma > 0.0 && self.gamma < 1.0) {
            return Err(OnlineError::BadConfig { field: "gamma", value: self.gamma });
        }
        if !(self.margin >= 0.0 && self.margin < 1.0) {
            return Err(OnlineError::BadConfig { field: "margin", value: self.margin });
        }
        if !(self.emergency_slack >= 0.0 && self.emergency_slack.is_finite()) {
            return Err(OnlineError::BadConfig {
                field: "emergency_slack",
                value: self.emergency_slack,
            });
        }
        Ok(())
    }
}

/// What a batch did to the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplanKind {
    /// All touched sensors stayed inside their applicability bands — the
    /// planner was not invoked.
    None,
    /// Only affected cumulative sets were re-routed and retargeted.
    Incremental,
    /// A full Algorithm-3 + repair round replaced the series.
    Full,
}

impl ReplanKind {
    /// Stable lowercase name (used in JSON responses).
    pub fn as_str(&self) -> &'static str {
        match self {
            Self::None => "none",
            Self::Incremental => "incremental",
            Self::Full => "full",
        }
    }
}

impl fmt::Display for ReplanKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Per-batch ingest outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IngestReport {
    /// Plan revision after this batch (bumps on any plan mutation).
    pub revision: u64,
    /// Controller clock after this batch.
    pub time: f64,
    /// Replanning tier this batch triggered.
    pub replan: ReplanKind,
    /// Touched sensors whose rounding class left its applicability band.
    pub class_changes: usize,
    /// Emergency rescue sensors dispatched by this batch.
    pub emergency_sensors: usize,
    /// Planner invocations (tour constructions / full replans) performed by
    /// this batch — zero for any class-stable batch.
    pub planner_calls: usize,
}

impl IngestReport {
    /// JSON view for the serve layer.
    pub fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("revision".to_string(), Value::Num(self.revision as f64)),
            ("time".to_string(), Value::Num(self.time)),
            ("replan".to_string(), Value::Str(self.replan.as_str().to_string())),
            ("class_changes".to_string(), Value::Num(self.class_changes as f64)),
            ("emergency_sensors".to_string(), Value::Num(self.emergency_sensors as f64)),
            ("planner_calls".to_string(), Value::Num(self.planner_calls as f64)),
        ])
    }
}

/// Predicted death entry in the emergency queue. Ordered by time, then
/// sensor, then stamp — a total order, so heap behaviour is deterministic.
#[derive(Debug, Clone, Copy)]
struct Deadline {
    time: f64,
    sensor: usize,
    stamp: u64,
}

impl PartialEq for Deadline {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for Deadline {}

impl PartialOrd for Deadline {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Deadline {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .total_cmp(&other.time)
            .then(self.sensor.cmp(&other.sensor))
            .then(self.stamp.cmp(&other.stamp))
    }
}

/// The closed-loop controller. See the module docs for the control law.
#[derive(Debug)]
pub struct OnlineController {
    network: Network,
    cfg: OnlineConfig,
    capacities: Vec<f64>,

    // --- per-sensor estimator state -----------------------------------
    predictors: Vec<EwmaPredictor>,
    last_rate: Vec<f64>,
    level: Vec<f64>,
    level_time: Vec<f64>,

    // --- plan state ----------------------------------------------------
    now: f64,
    tau1: f64,
    class_of: Vec<usize>,
    assigned: Vec<f64>,
    series: ScheduleSeries,
    /// `base_ids[k]` = current set index serving cumulative class `D_k`.
    base_ids: Vec<usize>,
    /// Dispatches `< next_dispatch` have been executed (charges applied).
    next_dispatch: usize,
    /// Persistent forest/tour state backing the incremental tier; re-seeded
    /// by every full replan.
    planner: Option<IncrementalPlanner>,

    // --- emergency queue ----------------------------------------------
    heap: BinaryHeap<Reverse<Deadline>>,
    stamp: Vec<u64>,

    // --- charge log (for edge-client mirroring) ------------------------
    /// When enabled, every applied charge is appended as `(time, sensor)`
    /// so a harness can forward completed charges to `SensorClient`s.
    log_charges: bool,
    charged: Vec<(f64, usize)>,

    // --- counters ------------------------------------------------------
    revision: u64,
    planner_calls: usize,
    full_replans: usize,
    incremental_replans: usize,
    emergency_dispatches: usize,
}

impl OnlineController {
    /// Build a controller and compute the initial plan from deployment-time
    /// rate estimates (sensors start at full batteries, `now = 0`).
    pub fn new(
        network: Network,
        capacities: Vec<f64>,
        initial_rates: Vec<f64>,
        cfg: OnlineConfig,
    ) -> Result<Self, OnlineError> {
        cfg.validate()?;
        let n = network.n();
        if n == 0 {
            return Err(OnlineError::EmptyNetwork);
        }
        if network.q() == 0 {
            return Err(OnlineError::NoChargers);
        }
        if capacities.len() != n {
            return Err(OnlineError::LengthMismatch {
                field: "capacities",
                expected: n,
                got: capacities.len(),
            });
        }
        if initial_rates.len() != n {
            return Err(OnlineError::LengthMismatch {
                field: "initial_rates",
                expected: n,
                got: initial_rates.len(),
            });
        }
        for &c in &capacities {
            if !c.is_finite() {
                return Err(OnlineError::NonFinite { field: "capacities", value: c });
            }
            if c <= 0.0 {
                return Err(OnlineError::NotPositive { field: "capacities", value: c });
            }
        }
        for &r in &initial_rates {
            if !r.is_finite() {
                return Err(OnlineError::NonFinite { field: "initial_rates", value: r });
            }
            if r <= 0.0 {
                return Err(OnlineError::NotPositive { field: "initial_rates", value: r });
            }
        }

        let mut ctl = Self {
            predictors: initial_rates.iter().map(|&r| EwmaPredictor::new(cfg.gamma, r)).collect(),
            last_rate: initial_rates,
            level: capacities.clone(),
            level_time: vec![0.0; n],
            now: 0.0,
            tau1: 1.0,
            class_of: vec![0; n],
            assigned: vec![1.0; n],
            series: ScheduleSeries::new(),
            base_ids: Vec::new(),
            next_dispatch: 0,
            planner: None,
            heap: BinaryHeap::new(),
            stamp: vec![0; n],
            log_charges: false,
            charged: Vec::new(),
            revision: 0,
            planner_calls: 0,
            full_replans: 0,
            incremental_replans: 0,
            emergency_dispatches: 0,
            network,
            cfg,
            capacities,
        };
        ctl.full_replan();
        Ok(ctl)
    }

    // --- estimator views ----------------------------------------------

    /// Pessimistic working rate: the EWMA prediction, floored by the most
    /// recent raw sample so a sudden rate spike takes effect immediately.
    pub fn rate_estimate(&self, sensor: usize) -> f64 {
        self.predictors[sensor].predicted_rate().max(self.last_rate[sensor])
    }

    /// Estimated residual energy at time `t` under linear drain.
    fn level_at(&self, sensor: usize, t: f64) -> f64 {
        let drained = self.rate_estimate(sensor) * (t - self.level_time[sensor]);
        (self.level[sensor] - drained).max(0.0)
    }

    /// Current residual-energy estimate.
    pub fn level_estimate(&self, sensor: usize) -> f64 {
        self.level_at(sensor, self.now)
    }

    /// Achievable charging cycle `τ̂_i`: full-battery lifetime shrunk by the
    /// safety margin, clamped to the horizon (keeps the partition finite
    /// when a sensor's working rate is ~0).
    fn tau_hat(&self, sensor: usize) -> f64 {
        let rate = self.rate_estimate(sensor);
        if rate <= 0.0 {
            return self.cfg.horizon;
        }
        (self.capacities[sensor] / rate * (1.0 - self.cfg.margin)).min(self.cfg.horizon)
    }

    /// The applicability band test with margin hysteresis. With zero
    /// margin this is exactly [`schedule_still_applicable`]:
    /// `τ'_i <= τ̂ < 2·τ'_i`. With a positive margin the low edge relaxes
    /// to `τ'_i·(1 − margin)` — safe, because `τ̂` is itself the
    /// `(1 − margin)`-shrunk cycle, so the *true* achievable cycle is
    /// still at least `τ'_i` there. Without this slack the `τ₁`-anchor
    /// sensor (whose assigned cycle equals its planned `τ̂` exactly) would
    /// trigger a full replan on every infinitesimal rate increase.
    fn still_applicable(&self, sensor: usize, tau: f64) -> bool {
        let assigned = self.assigned[sensor];
        if self.cfg.margin == 0.0 {
            return schedule_still_applicable(assigned, tau);
        }
        tau >= assigned * (1.0 - self.cfg.margin) && tau < 2.0 * assigned
    }

    /// Predicted absolute death time under the working rate.
    fn death_time(&self, sensor: usize) -> f64 {
        let rate = self.rate_estimate(sensor);
        if rate <= 0.0 {
            return f64::INFINITY;
        }
        self.level_time[sensor] + self.level[sensor] / rate
    }

    // --- accessors ------------------------------------------------------

    /// Sensor/depot geometry.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Controller clock (time of the latest batch).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Plan revision; bumps on every plan mutation.
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Current base cycle `τ₁`.
    pub fn tau1(&self) -> f64 {
        self.tau1
    }

    /// Monitoring-period horizon the controller was configured with.
    pub fn horizon(&self) -> f64 {
        self.cfg.horizon
    }

    /// How many dispatches of [`Self::series`] have already executed
    /// (charges applied); the rest are pending.
    pub fn executed_dispatches(&self) -> usize {
        self.next_dispatch
    }

    /// Currently assigned (rounded) cycles `τ'_i`.
    pub fn assigned_cycles(&self) -> &[f64] {
        &self.assigned
    }

    /// The full schedule series (executed + pending dispatches).
    pub fn series(&self) -> &ScheduleSeries {
        &self.series
    }

    /// Cumulative planner invocations (tour constructions + full replans).
    pub fn planner_calls(&self) -> usize {
        self.planner_calls
    }

    /// Cumulative full replans.
    pub fn full_replans(&self) -> usize {
        self.full_replans
    }

    /// Cumulative incremental (per-class) replans.
    pub fn incremental_replans(&self) -> usize {
        self.incremental_replans
    }

    /// Cumulative emergency rescue dispatches.
    pub fn emergency_dispatches(&self) -> usize {
        self.emergency_dispatches
    }

    /// Enable (or disable) the charge log. Off by default — long-lived
    /// serve sessions must not accumulate an unbounded log; a closed-loop
    /// harness that mirrors charges into edge clients turns it on.
    pub fn set_charge_log(&mut self, enabled: bool) {
        self.log_charges = enabled;
        if !enabled {
            self.charged.clear();
        }
    }

    /// Drain the charge log: every `(time, sensor)` charge applied since
    /// the last drain, in application order. Always empty unless
    /// [`Self::set_charge_log`] enabled logging.
    pub fn take_charges(&mut self) -> Vec<(f64, usize)> {
        std::mem::take(&mut self.charged)
    }

    // --- ingest ---------------------------------------------------------

    /// Ingest one telemetry batch: advance the clock (executing due
    /// dispatches), update estimators, detect class drift, replan at the
    /// cheapest sufficient tier and run the emergency check.
    pub fn ingest(&mut self, batch: &TelemetryBatch) -> Result<IngestReport, OnlineError> {
        if !batch.time.is_finite() {
            return Err(OnlineError::NonFinite { field: "time", value: batch.time });
        }
        if batch.time < self.now - EPS {
            return Err(OnlineError::TimeNotMonotone { time: batch.time, now: self.now });
        }
        let n = self.network.n();
        for r in &batch.records {
            if r.sensor >= n {
                return Err(OnlineError::UnknownSensor { sensor: r.sensor, n });
            }
            if let Some(rate) = r.rate {
                if !rate.is_finite() {
                    return Err(OnlineError::NonFinite { field: "rate", value: rate });
                }
                if rate < 0.0 {
                    return Err(OnlineError::NotPositive { field: "rate", value: rate });
                }
            }
            if let Some(level) = r.level {
                if !level.is_finite() {
                    return Err(OnlineError::NonFinite { field: "level", value: level });
                }
                if level < 0.0 {
                    return Err(OnlineError::NotPositive { field: "level", value: level });
                }
            }
        }

        let planner_before = self.planner_calls;
        let t = batch.time.max(self.now);
        // Dispatches strictly before the batch time are already reflected
        // in the reported levels; dispatches scheduled at exactly `t` are
        // not (the report is read first, then the fleet goes out) and are
        // executed *after* the measurements below — otherwise a stale
        // pre-charge reading would spawn a phantom emergency.
        self.execute_due(t - EPS);
        self.now = t;

        // Apply the measurements. Settle each touched sensor's drain
        // estimate to `now` under the old rate *before* swapping rates, so
        // a rate change is not applied retroactively.
        let mut touched: Vec<usize> = Vec::with_capacity(batch.records.len());
        for r in &batch.records {
            let i = r.sensor;
            self.level[i] = self.level_at(i, t);
            self.level_time[i] = t;
            if let Some(rate) = r.rate {
                self.predictors[i].observe(rate);
                self.last_rate[i] = rate;
            }
            if let Some(level) = r.level {
                self.level[i] = level.min(self.capacities[i]);
            }
            touched.push(i);
        }
        touched.sort_unstable();
        touched.dedup();
        self.execute_due(t + EPS);

        // Drift detection: only touched sensors can have left their bands.
        let mut need_full = false;
        let mut changes: Vec<(usize, usize)> = Vec::new();
        for &i in &touched {
            let tau = self.tau_hat(i);
            if self.still_applicable(i, tau) {
                continue;
            }
            if tau < self.tau1 {
                // τ₁ undercut: the whole power-of-two grid shifts.
                need_full = true;
                changes.push((i, 0));
            } else {
                changes.push((i, power_class(self.tau1, tau)));
            }
        }
        let class_changes = changes.len();

        let mut replan = ReplanKind::None;
        if !changes.is_empty() && self.now < self.cfg.horizon {
            if !need_full && self.try_incremental(&changes) {
                replan = ReplanKind::Incremental;
            } else {
                self.full_replan();
                replan = ReplanKind::Full;
            }
        }

        for &i in &touched {
            self.push_deadline(i);
        }
        let emergency_sensors = self.check_emergencies();

        Ok(IngestReport {
            revision: self.revision,
            time: self.now,
            replan,
            class_changes,
            emergency_sensors,
            planner_calls: self.planner_calls - planner_before,
        })
    }

    /// Batch-apply entry point: ingest a run of telemetry batches in
    /// order under one `&mut` borrow — the serve layer's
    /// `/telemetry/batch` handler acquires the session lock once and
    /// applies every frame addressed to this session here, instead of
    /// paying a lock/dispatch round per frame.
    ///
    /// Semantics are *identical* to calling [`Self::ingest`] once per
    /// batch (pinned by the batch-equivalence property test): each batch
    /// gets its own report, a rejected batch leaves the controller
    /// untouched and does **not** abort the run — exactly as if the
    /// frames had been posted as separate requests.
    pub fn ingest_all<'a, I>(&mut self, batches: I) -> Vec<Result<IngestReport, OnlineError>>
    where
        I: IntoIterator<Item = &'a TelemetryBatch>,
    {
        batches.into_iter().map(|b| self.ingest(b)).collect()
    }

    /// Ingest a suppressed-event batch from edge clients: reconstruct the
    /// per-sensor estimator state carried by each [`crate::ClassEvent`]
    /// verbatim
    /// (`EwmaPredictor::from_state` — *not* a re-observation), then run the
    /// same drift/replan/emergency machinery as [`Self::ingest`].
    ///
    /// Because every event carries the exact post-observation state the
    /// full per-slot stream would have produced, the resulting plan
    /// sequence is byte-identical to streaming — provided the clients'
    /// drift tests mirror this controller's (they share the float
    /// expressions via `perpetuum-client`) and their plan/charge pictures
    /// are kept fresh.
    ///
    /// A batch that needs a **full** replan is refused with
    /// [`OnlineError::SyncRequired`] *before any state is mutated* unless
    /// [`EventBatch::sync`] is set: the new `τ₁` grid depends on every
    /// sensor's current estimate, so the fleet must report everyone. The
    /// tier decision is dry-run on the event payloads — valid because
    /// `τ̂` depends only on the event state and clock advancement never
    /// touches `assigned`/`τ₁`. A sync batch must carry one event per
    /// sensor (duplicates are tolerated; the last wins).
    pub fn ingest_events(&mut self, batch: &EventBatch) -> Result<IngestReport, OnlineError> {
        if !batch.time.is_finite() {
            return Err(OnlineError::NonFinite { field: "time", value: batch.time });
        }
        if batch.time < self.now - EPS {
            return Err(OnlineError::TimeNotMonotone { time: batch.time, now: self.now });
        }
        let n = self.network.n();
        for e in &batch.events {
            if e.sensor >= n {
                return Err(OnlineError::UnknownSensor { sensor: e.sensor, n });
            }
            if !e.rho_hat.is_finite() {
                return Err(OnlineError::NonFinite { field: "rho_hat", value: e.rho_hat });
            }
            if !e.last_rate.is_finite() {
                return Err(OnlineError::NonFinite { field: "last_rate", value: e.last_rate });
            }
            if e.last_rate < 0.0 {
                return Err(OnlineError::NotPositive { field: "last_rate", value: e.last_rate });
            }
            if !e.level.is_finite() {
                return Err(OnlineError::NonFinite { field: "level", value: e.level });
            }
            if e.level < 0.0 {
                return Err(OnlineError::NotPositive { field: "level", value: e.level });
            }
        }

        // Last event per sensor wins; `touched` in sorted order matches
        // `ingest`'s sort+dedup, so the change list (and therefore every
        // planner call) comes out in the identical order.
        let mut last_event: Vec<Option<&crate::events::ClassEvent>> = vec![None; n];
        let mut touched: Vec<usize> = Vec::with_capacity(batch.events.len());
        for e in &batch.events {
            if last_event[e.sensor].is_none() {
                touched.push(e.sensor);
            }
            last_event[e.sensor] = Some(e);
        }
        touched.sort_unstable();
        if batch.sync && touched.len() != n {
            return Err(OnlineError::LengthMismatch {
                field: "sync_events",
                expected: n,
                got: batch.events.len(),
            });
        }

        // Dry-run the drift decision on the post-event state, before any
        // mutation, so a refused batch leaves the controller untouched.
        let t = batch.time.max(self.now);
        let mut need_full = false;
        let mut changes: Vec<(usize, usize)> = Vec::new();
        for &i in &touched {
            let e = last_event[i].expect("touched implies an event");
            let rate = e.rho_hat.max(e.last_rate);
            let tau = if rate <= 0.0 {
                self.cfg.horizon
            } else {
                (self.capacities[i] / rate * (1.0 - self.cfg.margin)).min(self.cfg.horizon)
            };
            if self.still_applicable(i, tau) {
                continue;
            }
            if tau < self.tau1 {
                need_full = true;
                changes.push((i, 0));
            } else {
                changes.push((i, power_class(self.tau1, tau)));
            }
        }
        let class_changes = changes.len();
        let will_replan = !changes.is_empty() && t < self.cfg.horizon;
        if will_replan && (need_full || !self.incremental_feasible(&changes)) && !batch.sync {
            return Err(OnlineError::SyncRequired);
        }

        // Commit: same clock/charge choreography as `ingest`, but the
        // estimator state is *adopted*, not re-derived.
        let planner_before = self.planner_calls;
        self.execute_due(t - EPS);
        self.now = t;
        for &i in &touched {
            let e = last_event[i].expect("touched implies an event");
            self.predictors[i] = EwmaPredictor::from_state(self.cfg.gamma, e.rho_hat);
            self.last_rate[i] = e.last_rate;
            self.level[i] = e.level.min(self.capacities[i]);
            self.level_time[i] = t;
        }
        self.execute_due(t + EPS);

        let mut replan = ReplanKind::None;
        if will_replan {
            if !need_full && self.try_incremental(&changes) {
                replan = ReplanKind::Incremental;
            } else {
                self.full_replan();
                replan = ReplanKind::Full;
            }
        }

        for &i in &touched {
            self.push_deadline(i);
        }
        let emergency_sensors = self.check_emergencies();

        Ok(IngestReport {
            revision: self.revision,
            time: self.now,
            replan,
            class_changes,
            emergency_sensors,
            planner_calls: self.planner_calls - planner_before,
        })
    }

    /// Execute every pending dispatch with time `<= limit`: covered
    /// sensors are considered recharged to capacity at the dispatch time
    /// (the fleet's travel time is below the slot scale, as in the paper's
    /// instantaneous-service model).
    fn execute_due(&mut self, limit: f64) {
        while self.next_dispatch < self.series.dispatch_count() {
            let d = self.series.dispatches()[self.next_dispatch];
            if d.time > limit {
                break;
            }
            let covered: Vec<usize> = self.series.sets()[d.set].sensors().to_vec();
            for i in covered {
                self.level[i] = self.capacities[i];
                self.level_time[i] = d.time;
                self.push_deadline(i);
                if self.log_charges {
                    self.charged.push((d.time, i));
                }
            }
            self.next_dispatch += 1;
        }
    }

    /// Advance the clock to `t`, executing everything due by then.
    fn advance_to(&mut self, t: f64) {
        self.execute_due(t + EPS);
        self.now = t;
    }

    /// Queue (or refresh) a sensor's predicted-death deadline. Deadlines at
    /// or past the horizon are not queued — any state change re-pushes, so
    /// nothing is lost by dropping them.
    fn push_deadline(&mut self, sensor: usize) {
        self.stamp[sensor] += 1;
        let death = self.death_time(sensor);
        if death < self.cfg.horizon {
            self.heap.push(Reverse(Deadline { time: death, sensor, stamp: self.stamp[sensor] }));
        }
    }

    /// First pending dispatch that covers `sensor`, if any.
    fn next_charge_time(&self, sensor: usize) -> Option<f64> {
        self.series.dispatches()[self.next_dispatch..]
            .iter()
            .find(|d| self.series.sets()[d.set].contains_sensor(sensor))
            .map(|d| d.time)
    }

    /// Incremental tier: splice only the cumulative sets whose membership
    /// changed (persistent-forest surgery + warm-started tour repair via
    /// [`IncrementalPlanner::apply_migrations`]), retarget their future
    /// dispatches and keep the timeline. Returns `false` (without
    /// mutating) when the change is structural — a new class above `K`, a
    /// vanished top class, or an emptied set — and a full replan is
    /// required instead.
    fn try_incremental(&mut self, changes: &[(usize, usize)]) -> bool {
        if !self.incremental_feasible(changes) {
            return false;
        }
        let Some(planner) = self.planner.as_mut() else {
            return false; // unreachable: feasibility already checked
        };

        // Commit: splice the affected forests and swap the rebuilt sets in.
        for k in planner.apply_migrations(&self.network, changes) {
            self.planner_calls += 1;
            let id = self.series.add_set(planner.tour_set(k).clone());
            self.series.retarget_dispatches(self.base_ids[k], id, self.now);
            self.base_ids[k] = id;
        }
        for &(i, k) in changes {
            self.class_of[i] = k;
            self.assigned[i] = self.tau1 * f64::powi(2.0, k as i32);
        }
        self.incremental_replans += 1;
        self.revision += 1;
        true
    }

    /// Read-only feasibility half of [`Self::try_incremental`]: `true` iff
    /// the change set is non-structural and the persistent planner can
    /// splice it. Used both as the commit guard and as the *dry-run* tier
    /// decision of [`Self::ingest_events`] — the inputs (`changes`,
    /// `class_of`, `base_ids`) are untouched by clock advancement, so the
    /// pre-mutation answer is the post-mutation answer.
    fn incremental_feasible(&self, changes: &[(usize, usize)]) -> bool {
        let n = self.network.n();
        let k_max = self.base_ids.len() - 1;
        let mut new_class = self.class_of.clone();
        for &(i, k) in changes {
            if k > k_max {
                return false;
            }
            new_class[i] = k;
        }
        if new_class.iter().copied().max() != Some(k_max) {
            return false;
        }

        // Classes whose cumulative set D_k gained or lost a sensor: moving
        // i from class a to class b (a < b) removes it from D_a..D_{b-1}.
        // An emptied set stays structural (the grid would dispatch hollow
        // tours), so it falls through to the full tier like before.
        let mut affected = vec![false; k_max + 1];
        for &(i, k) in changes {
            let old = self.class_of[i];
            affected[old.min(k)..old.max(k)].fill(true);
        }
        for (k, _) in affected.iter().enumerate().filter(|(_, &a)| a) {
            if !(0..n).any(|i| new_class[i] <= k) {
                return false;
            }
        }
        self.planner.is_some()
    }

    /// Full tier: rebuild the plan from scratch with Algorithm 3 + the
    /// nearest-scheduling `V^a` repair, then execute any immediate repair
    /// dispatch the planner scheduled at `now`.
    fn full_replan(&mut self) {
        let n = self.network.n();
        let taus: Vec<f64> = (0..n).map(|i| self.tau_hat(i)).collect();
        let residuals: Vec<f64> = (0..n)
            .map(|i| {
                let rate = self.rate_estimate(i);
                if rate <= 0.0 {
                    return taus[i];
                }
                (self.level_at(i, self.now) / rate * (1.0 - self.cfg.margin)).min(taus[i])
            })
            .collect();
        let input = VarInput {
            network: &self.network,
            max_cycles: &taus,
            residuals: &residuals,
            now: self.now,
            horizon: self.cfg.horizon,
            polish_rounds: self.cfg.polish_rounds,
        };
        let detailed = replan_variable_detailed(&input, RepairStrategy::NearestScheduling);
        let (plan, planner) =
            IncrementalPlanner::from_detailed(&input, detailed, IncrementalConfig::default());
        self.planner = Some(planner);
        self.planner_calls += 1;
        self.full_replans += 1;
        self.series = plan.series;
        if self.cfg.refine_steps > 0 {
            // Anytime upgrade of the fresh constructive plan. Set ids and
            // dispatch times are preserved exactly, so `base_ids` below
            // stays valid and feasibility is untouched; the seed advances
            // with the replan counter, keeping the controller
            // byte-deterministic. Later incremental splices overwrite a
            // refined base set with a constructive one — cheapness is the
            // splice tier's contract, and the next full round re-refines.
            let budget = Budget::steps(self.cfg.refine_steps);
            let (refined, _) = refine(
                &self.network,
                &self.series,
                &budget,
                REFINE_SEED ^ self.full_replans as u64,
            );
            self.series = refined;
        }
        self.base_ids = plan.base_set_ids;
        self.assigned = plan.assigned_cycles;
        self.tau1 = self.assigned.iter().copied().fold(f64::INFINITY, f64::min);
        self.class_of = self.assigned.iter().map(|&a| power_class(self.tau1, a)).collect();
        self.next_dispatch = 0;
        self.revision += 1;
        // The repair tier may have scheduled `(C'_0, now)` — execute it.
        let t = self.now;
        self.advance_to(t);
    }

    /// Drain the deadline queue: any live deadline before the horizon whose
    /// sensor is not visited in time gets folded into one rescue dispatch
    /// at `now`. Returns the number of rescued sensors.
    fn check_emergencies(&mut self) -> usize {
        if self.now >= self.cfg.horizon {
            return 0;
        }
        let mut safe: Vec<Deadline> = Vec::new();
        let mut urgent: Vec<usize> = Vec::new();
        while let Some(Reverse(d)) = self.heap.pop() {
            if d.stamp != self.stamp[d.sensor] {
                continue; // superseded by a newer estimate
            }
            if d.time >= self.cfg.horizon {
                continue;
            }
            let visit_by = d.time - self.cfg.emergency_slack;
            match self.next_charge_time(d.sensor) {
                Some(t) if t <= visit_by + EPS => safe.push(d),
                _ => urgent.push(d.sensor),
            }
        }
        for d in safe {
            self.heap.push(Reverse(d));
        }
        if urgent.is_empty() {
            return 0;
        }
        urgent.sort_unstable();
        urgent.dedup();

        let alive = vec![true; self.network.q()];
        let Some(set) = degraded_tour_set(&self.network, &urgent, &alive, self.cfg.polish_rounds)
        else {
            return 0; // unreachable: q >= 1 and all chargers are up
        };
        self.planner_calls += 1;
        let id = self.series.add_set(set);
        self.series.push_dispatch(self.now, id);
        self.series.sort_by_time();
        for &i in &urgent {
            self.level[i] = self.capacities[i];
            self.level_time[i] = self.now;
            if self.log_charges {
                self.charged.push((self.now, i));
            }
        }
        // The sort may have interleaved the rescue with executed history;
        // re-derive the executed prefix (everything due by `now` has been
        // executed, including the rescue itself).
        self.next_dispatch =
            self.series.dispatches().iter().filter(|d| d.time <= self.now + EPS).count();
        for &i in &urgent {
            self.push_deadline(i);
        }
        self.emergency_dispatches += 1;
        self.revision += 1;
        urgent.len()
    }

    // --- plan export ----------------------------------------------------

    /// The not-yet-executed tail of the plan as a fresh series whose
    /// dispatches all satisfy `time >= from` — the shape the sim engine's
    /// `PlanUpdate::Replace` requires.
    pub fn pending_series(&self, from: f64) -> ScheduleSeries {
        let mut out = ScheduleSeries::new();
        let mut remap = vec![usize::MAX; self.series.sets().len()];
        for d in self.series.dispatches() {
            if d.time < from - EPS {
                continue;
            }
            if remap[d.set] == usize::MAX {
                remap[d.set] = out.add_set(self.series.sets()[d.set].clone());
            }
            out.push_dispatch(d.time, remap[d.set]);
        }
        out
    }

    /// Deterministic JSON view of the current plan and counters.
    pub fn plan_value(&self) -> Value {
        Value::Obj(vec![
            ("revision".to_string(), Value::Num(self.revision as f64)),
            ("now".to_string(), Value::Num(self.now)),
            ("horizon".to_string(), Value::Num(self.cfg.horizon)),
            ("tau1".to_string(), Value::Num(self.tau1)),
            ("planner_calls".to_string(), Value::Num(self.planner_calls as f64)),
            ("full_replans".to_string(), Value::Num(self.full_replans as f64)),
            ("incremental_replans".to_string(), Value::Num(self.incremental_replans as f64)),
            ("emergency_dispatches".to_string(), Value::Num(self.emergency_dispatches as f64)),
            (
                "assigned_cycles".to_string(),
                Value::Arr(self.assigned.iter().map(|&c| Value::Num(c)).collect()),
            ),
            ("service_cost".to_string(), Value::Num(self.series.service_cost())),
            ("dispatches".to_string(), Value::Num(self.series.dispatch_count() as f64)),
            ("executed".to_string(), Value::Num(self.next_dispatch as f64)),
            ("schedule".to_string(), self.series.to_value()),
        ])
    }

    /// [`Self::plan_value`] rendered to a string; byte-identical across
    /// runs fed the same construction arguments and telemetry stream.
    pub fn plan_json(&self) -> String {
        serde_json::to_string(&self.plan_value()).unwrap_or_else(|_| "{}".to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::{TelemetryBatch, TelemetryRecord};
    use perpetuum_geom::Point2;

    /// 5 sensors on a line, one depot. Cycles 4, 5.5, 6.5, 13, 14 →
    /// τ₁ = 4, classes [0, 0, 0, 1, 1], assigned [4, 4, 4, 8, 8].
    fn controller() -> OnlineController {
        let sensors = vec![(0.0, 0.0), (10.0, 0.0), (20.0, 0.0), (30.0, 0.0), (40.0, 0.0)]
            .into_iter()
            .map(|(x, y)| Point2::new(x, y))
            .collect();
        let depots = vec![Point2::new(20.0, 30.0)];
        let network = Network::new(sensors, depots);
        let cycles = [4.0, 5.5, 6.5, 13.0, 14.0];
        let rates: Vec<f64> = cycles.iter().map(|c| 1.0 / c).collect();
        OnlineController::new(network, vec![1.0; 5], rates, OnlineConfig::new(100.0))
            .expect("valid controller")
    }

    #[test]
    fn initial_plan_matches_the_rounding_partition() {
        let ctl = controller();
        assert_eq!(ctl.tau1(), 4.0);
        assert_eq!(ctl.assigned_cycles(), &[4.0, 4.0, 4.0, 8.0, 8.0]);
        assert_eq!(ctl.planner_calls(), 1);
        assert_eq!(ctl.full_replans(), 1);
        assert!(ctl.series().dispatch_count() > 0);
    }

    #[test]
    fn in_band_wobble_is_planner_free() {
        let mut ctl = controller();
        let calls = ctl.planner_calls();
        let rev = ctl.revision();
        // Sensor 1: τ 5.5 → 5.0; sensor 3: τ 13 → 11. Both stay in-band.
        let batch = TelemetryBatch {
            time: 1.0,
            records: vec![
                TelemetryRecord::rate(1, 1.0 / 5.0),
                TelemetryRecord::rate(3, 1.0 / 11.0),
            ],
        };
        let report = ctl.ingest(&batch).expect("ingest");
        assert_eq!(report.replan, ReplanKind::None);
        assert_eq!(report.class_changes, 0);
        assert_eq!(report.planner_calls, 0, "class-stable batch must not plan");
        assert_eq!(ctl.planner_calls(), calls);
        assert_eq!(ctl.revision(), rev, "no mutation, no new revision");
    }

    #[test]
    fn class_drop_triggers_incremental_replan_only() {
        let mut ctl = controller();
        let calls = ctl.planner_calls();
        // Sensor 3: τ 13 → 5 (class 1 → 0); sensor 4 keeps class 1 alive.
        let batch = TelemetryBatch { time: 1.0, records: vec![TelemetryRecord::rate(3, 0.2)] };
        let report = ctl.ingest(&batch).expect("ingest");
        assert_eq!(report.replan, ReplanKind::Incremental);
        assert_eq!(report.class_changes, 1);
        assert_eq!(report.planner_calls, 1, "exactly one re-routed class set");
        assert_eq!(ctl.planner_calls(), calls + 1);
        assert_eq!(ctl.incremental_replans(), 1);
        assert_eq!(ctl.full_replans(), 1, "no second full replan");
        assert_eq!(ctl.assigned_cycles()[3], 4.0);
        // The re-routed D_0 must now include sensor 3.
        let d0 = &ctl.series().sets()[ctl.base_ids[0]];
        assert!(d0.contains_sensor(3));
        assert!(d0.contains_sensor(0));
    }

    /// Full-replan refinement must only ever lower the travel bill, keep
    /// the dispatch grid intact (so `base_ids` and emergency targeting
    /// stay valid), and leave the controller byte-deterministic.
    #[test]
    fn refine_steps_cuts_full_replan_cost_deterministically() {
        let mut s = 0xDECAFu64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        let sensors: Vec<Point2> =
            (0..40).map(|_| Point2::new(next() * 200.0, next() * 200.0)).collect();
        let depots = vec![Point2::new(50.0, 50.0), Point2::new(150.0, 150.0)];
        let network = Network::new(sensors, depots);
        let cycles: Vec<f64> = (0..40).map(|i| 6.0 + (i % 4) as f64 * 4.0).collect();
        let rates: Vec<f64> = cycles.iter().map(|c| 1.0 / c).collect();

        let build = |steps: u64| {
            OnlineController::new(
                network.clone(),
                vec![1.0; 40],
                rates.clone(),
                OnlineConfig::new(200.0).with_refine_steps(steps),
            )
            .expect("valid controller")
        };
        let plain = build(0);
        let refined = build(300_000);
        let refined_again = build(300_000);

        assert!(
            refined.series().service_cost() < plain.series().service_cost(),
            "refinement found no gain on a 40-sensor scatter: {} vs {}",
            refined.series().service_cost(),
            plain.series().service_cost()
        );
        assert_eq!(refined.series().dispatches(), plain.series().dispatches());
        assert_eq!(refined.series().sets().len(), plain.series().sets().len());
        let bytes =
            |c: &OnlineController| serde_json::to_string(c.series()).expect("serialize series");
        assert_eq!(bytes(&refined), bytes(&refined_again), "refined replans must be reproducible");
    }

    #[test]
    fn margin_hysteresis_absorbs_small_anchor_rate_increases() {
        let sensors = vec![(0.0, 0.0), (10.0, 0.0), (20.0, 0.0), (30.0, 0.0), (40.0, 0.0)]
            .into_iter()
            .map(|(x, y)| Point2::new(x, y))
            .collect();
        let network = Network::new(sensors, vec![Point2::new(20.0, 30.0)]);
        let cycles = [4.0, 5.5, 6.5, 13.0, 14.0];
        let rates: Vec<f64> = cycles.iter().map(|c| 1.0 / c).collect();
        let cfg = OnlineConfig::new(100.0).with_margin(0.2);
        let mut ctl = OnlineController::new(network, vec![1.0; 5], rates, cfg).expect("controller");
        // Anchor sensor 0: +10% rate sits inside the 20% hysteresis zone.
        let small = TelemetryBatch { time: 1.0, records: vec![TelemetryRecord::rate(0, 0.275)] };
        let report = ctl.ingest(&small).expect("ingest");
        assert_eq!(report.replan, ReplanKind::None, "hysteresis must absorb +10%");
        assert_eq!(report.planner_calls, 0);
        // +40% blows through the zone and forces a full replan.
        let big = TelemetryBatch { time: 2.0, records: vec![TelemetryRecord::rate(0, 0.35)] };
        let report = ctl.ingest(&big).expect("ingest");
        assert_eq!(report.replan, ReplanKind::Full, "+40% must replan");
    }

    #[test]
    fn tau1_undercut_triggers_full_replan() {
        let mut ctl = controller();
        // Sensor 0: τ 4 → 2, below τ₁ — the grid itself must move.
        let batch = TelemetryBatch { time: 1.0, records: vec![TelemetryRecord::rate(0, 0.5)] };
        let report = ctl.ingest(&batch).expect("ingest");
        assert_eq!(report.replan, ReplanKind::Full);
        assert_eq!(ctl.full_replans(), 2);
        assert!(ctl.tau1() <= 2.0 + EPS, "new tau1 {} must fit sensor 0", ctl.tau1());
    }

    #[test]
    fn vanishing_top_class_falls_back_to_full_replan() {
        let mut ctl = controller();
        // Both class-1 sensors speed up into class 0 — K shrinks, so the
        // incremental tier must refuse and a full replan runs.
        let batch = TelemetryBatch {
            time: 1.0,
            records: vec![TelemetryRecord::rate(3, 0.2), TelemetryRecord::rate(4, 0.2)],
        };
        let report = ctl.ingest(&batch).expect("ingest");
        assert_eq!(report.replan, ReplanKind::Full);
        assert_eq!(ctl.full_replans(), 2);
    }

    #[test]
    fn level_crash_triggers_emergency_dispatch() {
        let mut ctl = controller();
        let rev = ctl.revision();
        // Sensor 2 reports 5% battery at t = 1; death ≈ 1.33, first
        // scheduled visit at τ₁ = 4 — far too late.
        let batch = TelemetryBatch { time: 1.0, records: vec![TelemetryRecord::level(2, 0.05)] };
        let report = ctl.ingest(&batch).expect("ingest");
        assert_eq!(report.replan, ReplanKind::None, "no class left its band");
        assert_eq!(report.emergency_sensors, 1);
        assert_eq!(ctl.emergency_dispatches(), 1);
        assert!(ctl.revision() > rev);
        // The rescue recharged the sensor (estimate restored to capacity).
        assert!((ctl.level_estimate(2) - 1.0).abs() < 1e-12);
        // A rescue dispatch sits at `now` and is already executed.
        let rescued = ctl.series().dispatches().iter().any(|d| (d.time - 1.0).abs() < EPS);
        assert!(rescued, "rescue dispatch at t = 1 missing");
    }

    #[test]
    fn clock_advance_executes_due_dispatches() {
        let mut ctl = controller();
        let report = ctl.ingest(&TelemetryBatch::tick(4.5)).expect("ingest");
        assert_eq!(report.replan, ReplanKind::None);
        assert!(ctl.next_dispatch >= 1, "dispatch at τ₁ = 4 must have executed");
        // Class-0 sensors were recharged at t = 4.
        assert!((ctl.level_at(0, 4.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn time_travel_is_rejected() {
        let mut ctl = controller();
        ctl.ingest(&TelemetryBatch::tick(5.0)).expect("forward");
        let err = ctl.ingest(&TelemetryBatch::tick(4.0)).expect_err("backward");
        assert_eq!(err, OnlineError::TimeNotMonotone { time: 4.0, now: 5.0 });
    }

    #[test]
    fn bad_records_are_rejected_with_typed_errors() {
        let mut ctl = controller();
        let unknown = TelemetryBatch { time: 1.0, records: vec![TelemetryRecord::rate(9, 0.1)] };
        assert_eq!(
            ctl.ingest(&unknown).expect_err("unknown sensor"),
            OnlineError::UnknownSensor { sensor: 9, n: 5 }
        );
        let nan = TelemetryBatch { time: 1.0, records: vec![TelemetryRecord::rate(0, f64::NAN)] };
        assert!(matches!(
            ctl.ingest(&nan).expect_err("nan rate"),
            OnlineError::NonFinite { field: "rate", .. }
        ));
        let neg = TelemetryBatch { time: 1.0, records: vec![TelemetryRecord::level(0, -0.1)] };
        assert!(matches!(
            ctl.ingest(&neg).expect_err("negative level"),
            OnlineError::NotPositive { field: "level", .. }
        ));
        // Rejected batches leave the clock untouched.
        assert_eq!(ctl.now(), 0.0);
    }

    #[test]
    fn pending_series_contains_only_future_dispatches() {
        let mut ctl = controller();
        ctl.ingest(&TelemetryBatch::tick(9.0)).expect("ingest");
        let pending = ctl.pending_series(9.0);
        assert!(pending.dispatches().iter().all(|d| d.time >= 9.0 - EPS));
        // Full plan keeps history; the tail is a strict suffix.
        let full = ctl.series().dispatch_count();
        assert!(pending.dispatch_count() < full);
        assert!(pending.dispatch_count() > 0);
    }

    #[test]
    fn invalid_construction_arguments_are_typed_errors() {
        let net = Network::new(vec![Point2::new(0.0, 0.0)], vec![Point2::new(1.0, 1.0)]);
        let cfg = OnlineConfig::new(10.0);
        assert!(matches!(
            OnlineController::new(net.clone(), vec![1.0, 2.0], vec![0.5], cfg),
            Err(OnlineError::LengthMismatch { field: "capacities", .. })
        ));
        assert!(matches!(
            OnlineController::new(net.clone(), vec![1.0], vec![-0.5], cfg),
            Err(OnlineError::NotPositive { field: "initial_rates", .. })
        ));
        assert!(matches!(
            OnlineController::new(net, vec![1.0], vec![0.5], OnlineConfig::new(-1.0)),
            Err(OnlineError::NotPositive { field: "horizon", .. })
        ));
    }
}
