//! # perpetuum-online
//!
//! Closed-loop, telemetry-driven adaptive scheduling on top of the
//! open-loop planners in `perpetuum-core`.
//!
//! The paper's Algorithm 3 plans once from deployment-time rate estimates;
//! real networks drift. This crate closes the loop: streaming per-sensor
//! telemetry (rate samples and/or residual-energy readings) feeds EWMA rate
//! predictors, drift that invalidates a sensor's power-of-two rounding
//! class triggers *incremental* replanning (only the affected cumulative
//! sets are re-routed and their future dispatches retargeted), and a
//! death-prediction deadline queue issues emergency rescue dispatches when
//! a sensor would die before its next scheduled visit.
//!
//! The controller is deterministic by construction — no clocks, RNG or
//! I/O — so the same telemetry stream always yields a byte-identical plan
//! sequence. `perpetuum-serve` exposes it as stateful HTTP sessions and
//! `perpetuum-sim` closes the loop against the event-driven simulator.

#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod controller;
pub mod events;
pub mod snapshot;
pub mod telemetry;

pub use controller::{IngestReport, OnlineConfig, OnlineController, OnlineError, ReplanKind};
pub use events::{ClassEvent, EventBatch};
pub use snapshot::ControllerSeed;
pub use telemetry::{TelemetryBatch, TelemetryRecord};
