//! Telemetry wire types.
//!
//! A [`TelemetryBatch`] is one timestamped observation window: any subset of
//! sensors may report a sampled discharge rate (`rate`, energy per unit
//! time), a direct residual-energy reading (`level`), or both. Batches are
//! the only input channel into the controller — the serve layer parses them
//! straight off the HTTP body and the closed-loop sim harness synthesizes
//! them from the simulated network state.

use serde::{Deserialize, Serialize};

/// One sensor's report inside a batch. Both measurements are optional so a
/// deployment can mix cheap rate samples with occasional full energy reads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TelemetryRecord {
    /// Sensor index in `0..n`.
    pub sensor: usize,
    /// Sampled discharge rate `ρ_i` (energy per unit time), if measured.
    #[serde(default)]
    pub rate: Option<f64>,
    /// Residual energy reading, if measured. Clamped to the battery
    /// capacity on ingest.
    #[serde(default)]
    pub level: Option<f64>,
}

impl TelemetryRecord {
    /// A rate-only sample.
    pub fn rate(sensor: usize, rate: f64) -> Self {
        Self { sensor, rate: Some(rate), level: None }
    }

    /// A residual-energy-only reading.
    pub fn level(sensor: usize, level: f64) -> Self {
        Self { sensor, rate: None, level: Some(level) }
    }

    /// A combined rate + level report.
    pub fn full(sensor: usize, rate: f64, level: f64) -> Self {
        Self { sensor, rate: Some(rate), level: Some(level) }
    }
}

/// A timestamped batch of sensor reports. Batch times must be non-decreasing
/// within a session; the controller rejects time travel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TelemetryBatch {
    /// Observation time (same clock as the schedule horizon).
    pub time: f64,
    /// Per-sensor reports; sensors absent from the batch keep their current
    /// estimates.
    #[serde(default)]
    pub records: Vec<TelemetryRecord>,
}

impl TelemetryBatch {
    /// An empty batch (pure clock advance — still executes due dispatches
    /// and re-checks emergency deadlines).
    pub fn tick(time: f64) -> Self {
        Self { time, records: Vec::new() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_round_trips_through_json() {
        let batch = TelemetryBatch {
            time: 12.5,
            records: vec![
                TelemetryRecord::rate(0, 0.25),
                TelemetryRecord::level(3, 0.5),
                TelemetryRecord::full(7, 0.1, 0.9),
            ],
        };
        let text = serde_json::to_string(&batch).expect("serialize");
        let back: TelemetryBatch = serde_json::from_str(&text).expect("parse");
        assert_eq!(back, batch);
    }

    #[test]
    fn missing_optional_fields_parse_as_none() {
        let text = r#"{"time": 3.0, "records": [{"sensor": 2}]}"#;
        let batch: TelemetryBatch = serde_json::from_str(text).expect("parse");
        assert_eq!(batch.records.len(), 1);
        assert_eq!(batch.records[0].sensor, 2);
        assert_eq!(batch.records[0].rate, None);
        assert_eq!(batch.records[0].level, None);
    }
}
