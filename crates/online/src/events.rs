//! Suppressed-telemetry event batches.
//!
//! The `perpetuum-client` crate runs the controller's drift test on the
//! sensor itself; slots whose achievable cycle stays inside the
//! applicability band are never transmitted. When the band *is* left, the
//! sensor sends a [`ClassEvent`] carrying its exact post-observation
//! estimator state — the EWMA prediction `ρ̂`, the raw slot observation and
//! the settled energy level. The controller adopts that state verbatim
//! (`EwmaPredictor::from_state`) instead of re-observing, which is what
//! makes suppression lossless: the reconstructed estimator is bit-identical
//! to the one the full per-slot stream would have produced, so the plan
//! sequence is too (pinned by the serve-level suppression property test).
//!
//! A batch with [`EventBatch::sync`] set must carry one event per sensor —
//! the fleet-wide state refresh the controller demands (via
//! `OnlineError::SyncRequired`) before it runs a *full* replan, whose new
//! `τ₁` grid depends on every sensor's current estimate, not just the
//! drifted ones. Incremental replans touch only the evented sensors and
//! need no sync.
//!
//! [`EventBatch::observed`]/[`EventBatch::sent`] are the client-side
//! suppression counters **as deltas since the previous accepted batch**
//! (a rejected batch must be retried with the same deltas); the serve
//! layer sums them into the `perpetuum_frames_suppressed_ratio` metric.

use serde::{Deserialize, Serialize};

/// One sensor's estimator state at the slot that pushed it out of band.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassEvent {
    /// Sensor index in `0..n`.
    pub sensor: usize,
    /// EWMA prediction `ρ̂(t+1)` after the slot's observation (may be ≤ 0
    /// after idle/harvesting slots).
    pub rho_hat: f64,
    /// The raw rate observed in the slot (`≥ 0`).
    pub last_rate: f64,
    /// Energy level settled to the batch timestamp (`≥ 0`; clamped to the
    /// battery capacity on ingest).
    pub level: f64,
}

impl ClassEvent {
    /// Convenience constructor.
    pub fn new(sensor: usize, rho_hat: f64, last_rate: f64, level: f64) -> Self {
        Self { sensor, rho_hat, last_rate, level }
    }
}

/// A batch of suppressed-telemetry events sharing one timestamp.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventBatch {
    /// Slot timestamp (controller clock).
    pub time: f64,
    /// Fleet-wide state refresh: when set, `events` must cover every
    /// sensor exactly once. Required for batches that trigger a full
    /// replan.
    #[serde(default)]
    pub sync: bool,
    /// The events; at most one per sensor is meaningful (the last wins).
    #[serde(default)]
    pub events: Vec<ClassEvent>,
    /// Client-side slots observed since the previous accepted batch.
    #[serde(default)]
    pub observed: u64,
    /// Client-side event records put on the wire since the previous
    /// accepted batch (sync records included).
    #[serde(default)]
    pub sent: u64,
}

impl EventBatch {
    /// An ordinary (non-sync) batch with zeroed counters.
    pub fn new(time: f64, events: Vec<ClassEvent>) -> Self {
        Self { time, sync: false, events, observed: 0, sent: 0 }
    }
}
