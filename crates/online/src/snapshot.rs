//! Controller state serialization for crash recovery.
//!
//! The controller is deterministic by construction — no clocks, RNG or
//! I/O — so its *complete* state is captured by its construction
//! arguments plus the accepted telemetry stream: rebuilding from the same
//! [`ControllerSeed`] and re-ingesting the same batches yields a
//! byte-identical plan sequence (pinned by `tests/determinism.rs`). A
//! durability layer therefore never needs to serialize the controller's
//! internal fields (predictor EWMAs, forests, heaps); it journals the
//! seed once and every accepted batch after it. That is also the only
//! *provably* faithful snapshot: a field-by-field dump could silently
//! miss a new field, while seed + replay is exact by the determinism
//! property itself.
//!
//! [`ControllerSeed`] is that genesis record: raw sensor/depot
//! coordinates, per-sensor battery capacities and deployment-time rate
//! estimates, and the full [`OnlineConfig`]. [`ControllerSeed::build`]
//! reconstructs the controller through the exact same constructor path a
//! live session uses ([`Network::auto`] + [`OnlineController::new`]), so
//! a recovered controller starts bit-for-bit where the original did.

use crate::controller::{OnlineConfig, OnlineController, OnlineError};
use perpetuum_core::network::Network;
use perpetuum_geom::Point2;

/// Everything needed to reconstruct a freshly created controller:
/// the construction arguments of [`OnlineController::new`], with the
/// network flattened to raw coordinates so the seed is plain data.
#[derive(Debug, Clone, PartialEq)]
pub struct ControllerSeed {
    /// Sensor positions as `(x, y)`, in sensor-id order.
    pub sensors: Vec<(f64, f64)>,
    /// Depot positions as `(x, y)`, in depot order.
    pub depots: Vec<(f64, f64)>,
    /// Per-sensor battery capacities.
    pub capacities: Vec<f64>,
    /// Deployment-time per-sensor rate estimates.
    pub initial_rates: Vec<f64>,
    /// The controller's tuning knobs.
    pub config: OnlineConfig,
}

impl ControllerSeed {
    /// Captures a seed from the raw construction arguments. The network
    /// is flattened to coordinates; [`ControllerSeed::build`] re-derives
    /// the dense/sparse representation with [`Network::auto`], which is
    /// deterministic in the node count.
    pub fn new(
        network: &Network,
        capacities: Vec<f64>,
        initial_rates: Vec<f64>,
        config: OnlineConfig,
    ) -> Self {
        Self {
            sensors: network.sensor_positions().iter().map(|p| (p.x, p.y)).collect(),
            depots: (0..network.q()).map(|l| network.depot_pos(l)).map(|p| (p.x, p.y)).collect(),
            capacities,
            initial_rates,
            config,
        }
    }

    /// Validates the geometry a hostile or corrupted seed could carry —
    /// [`Network`]'s constructors `panic!` on these, and a recovery path
    /// must get a typed error instead.
    fn validate(&self) -> Result<(), OnlineError> {
        if self.depots.is_empty() {
            return Err(OnlineError::NoChargers);
        }
        for &(x, y) in self.sensors.iter().chain(&self.depots) {
            if !x.is_finite() {
                return Err(OnlineError::NonFinite { field: "position.x", value: x });
            }
            if !y.is_finite() {
                return Err(OnlineError::NonFinite { field: "position.y", value: y });
            }
        }
        Ok(())
    }

    /// Reconstructs the controller exactly as the original construction
    /// did: same network representation, same initial full replan. All
    /// other argument validation (capacities, rates, config ranges) is
    /// [`OnlineController::new`]'s own.
    pub fn build(&self) -> Result<OnlineController, OnlineError> {
        self.validate()?;
        let to_points = |coords: &[(f64, f64)]| -> Vec<Point2> {
            coords.iter().map(|&(x, y)| Point2::new(x, y)).collect()
        };
        let network = Network::auto(to_points(&self.sensors), to_points(&self.depots));
        OnlineController::new(
            network,
            self.capacities.clone(),
            self.initial_rates.clone(),
            self.config,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::{TelemetryBatch, TelemetryRecord};

    fn seed() -> ControllerSeed {
        ControllerSeed {
            sensors: vec![(10.0, 20.0), (40.0, 20.0), (25.0, 45.0)],
            depots: vec![(25.0, 60.0)],
            capacities: vec![1.0, 1.0, 2.0],
            initial_rates: vec![0.25, 0.125, 0.5],
            config: OnlineConfig::new(100.0),
        }
    }

    #[test]
    fn seed_round_trips_through_a_network() {
        let s = seed();
        let ctl = s.build().expect("valid seed");
        let recaptured = ControllerSeed::new(
            ctl.network(),
            s.capacities.clone(),
            s.initial_rates.clone(),
            s.config,
        );
        assert_eq!(recaptured, s, "capture ∘ build is the identity on seeds");
    }

    #[test]
    fn rebuilt_controller_replays_to_identical_plans() {
        let s = seed();
        let mut a = s.build().expect("build a");
        let mut b = s.build().expect("build b");
        let batches = [
            TelemetryBatch { time: 1.0, records: vec![TelemetryRecord::rate(0, 0.9)] },
            TelemetryBatch { time: 2.5, records: vec![TelemetryRecord::level(2, 0.4)] },
            TelemetryBatch::tick(4.0),
        ];
        for batch in &batches {
            let ra = a.ingest(batch).expect("a ingests");
            let rb = b.ingest(batch).expect("b ingests");
            assert_eq!(ra, rb, "reports diverge at t={}", batch.time);
        }
        assert_eq!(a.plan_json(), b.plan_json(), "plan bytes diverge");
    }

    #[test]
    fn hostile_seeds_are_typed_errors_not_panics() {
        let mut no_depots = seed();
        no_depots.depots.clear();
        assert!(matches!(no_depots.build(), Err(OnlineError::NoChargers)));

        let mut nan_pos = seed();
        nan_pos.sensors[1].1 = f64::NAN;
        assert!(matches!(nan_pos.build(), Err(OnlineError::NonFinite { .. })));

        let mut bad_len = seed();
        bad_len.capacities.pop();
        assert!(matches!(bad_len.build(), Err(OnlineError::LengthMismatch { .. })));

        let mut bad_cap = seed();
        bad_cap.capacities[0] = -1.0;
        assert!(matches!(bad_cap.build(), Err(OnlineError::NotPositive { .. })));
    }
}
