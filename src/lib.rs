//! # perpetuum
//!
//! A full Rust reproduction of *"Towards Perpetual Sensor Networks via
//! Deploying Multiple Mobile Wireless Chargers"* (Wenzheng Xu, Weifa Liang,
//! Xiaola Lin, Guoqiang Mao, Xiaojiang Ren — ICPP 2014): scheduling `q`
//! mobile wireless chargers so that no sensor of a WSN ever runs out of
//! energy over a monitoring period `T`, while minimising the chargers'
//! total travel distance (the *service cost*).
//!
//! This is the umbrella crate: it re-exports the workspace members so
//! downstream users can depend on a single crate.
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`geom`] | `perpetuum-geom` | points, fields, deployments, seeded RNG streams |
//! | [`graph`] | `perpetuum-graph` | distance matrices, MST, Euler circuits, exact & heuristic TSP |
//! | [`energy`] | `perpetuum-energy` | batteries, consumption processes, cycle distributions, EWMA predictor |
//! | [`core`] | `perpetuum-core` | Algorithms 1–3, `MinTotalDistance-var`, Greedy, feasibility checking |
//! | [`sim`] | `perpetuum-sim` | the discrete-event charging simulator and policies |
//! | [`par`] | `perpetuum-par` | scoped-thread parallel sweeps |
//! | [`exp`] | `perpetuum-exp` | figure-reproduction harness and CLI |
//!
//! # Quickstart
//!
//! ```
//! use perpetuum::prelude::*;
//!
//! // A small network: 6 sensors on a ring, one charger depot at the centre.
//! let sensors: Vec<Point2> = (0..6)
//!     .map(|i| {
//!         let a = i as f64 * std::f64::consts::TAU / 6.0;
//!         Point2::new(500.0 + 300.0 * a.cos(), 500.0 + 300.0 * a.sin())
//!     })
//!     .collect();
//! let network = Network::new(sensors, vec![Point2::new(500.0, 500.0)]);
//!
//! // Maximum charging cycles: two hungry sensors, four relaxed ones.
//! let cycles = vec![1.0, 1.0, 4.0, 4.0, 8.0, 8.0];
//! let instance = Instance::new(network, cycles, 64.0);
//!
//! // Algorithm 3: the 2(K+2)-approximation.
//! let plan = plan_min_total_distance(&instance, &MtdConfig::default());
//! assert!(check_series(&instance, &plan).is_ok(), "no sensor ever dies");
//! println!("service cost: {:.1} m over {} dispatches",
//!          plan.service_cost(), plan.dispatch_count());
//! ```

pub use perpetuum_core as core;
pub use perpetuum_energy as energy;
pub use perpetuum_exp as exp;
pub use perpetuum_geom as geom;
pub use perpetuum_graph as graph;
pub use perpetuum_par as par;
pub use perpetuum_serve as serve;
pub use perpetuum_sim as sim;

/// The most common imports, re-exported flat.
///
/// # Simulation pipeline
///
/// ```
/// use perpetuum::prelude::*;
///
/// let sensors = vec![Point2::new(100.0, 0.0), Point2::new(0.0, 200.0)];
/// let network = Network::new(sensors, vec![Point2::new(0.0, 0.0)]);
/// let world = World::fixed(network.clone(), &[2.0, 5.0]);
/// let cfg = SimConfig { horizon: 40.0, slot: 10.0, seed: 7, charger_speed: None };
/// let mut policy = MtdPolicy::new(&network);
/// let result = run(world, &cfg, &mut policy);
/// assert!(result.is_perpetual());
/// assert!(result.service_cost > 0.0);
/// ```
pub mod prelude {
    pub use perpetuum_core::bounds::lemma3_lower_bound;
    pub use perpetuum_core::feasibility::check_series;
    pub use perpetuum_core::greedy::{plan_greedy_fixed, GreedyConfig};
    pub use perpetuum_core::minmax::min_max_cover;
    pub use perpetuum_core::mtd::{plan_min_total_distance, MtdConfig};
    pub use perpetuum_core::network::{Instance, Network};
    pub use perpetuum_core::qmsf::q_rooted_msf;
    pub use perpetuum_core::qtsp::{q_rooted_tsp, q_rooted_tsp_routed, Routing};
    pub use perpetuum_core::rounding::partition_cycles;
    pub use perpetuum_core::schedule::ScheduleSeries;
    pub use perpetuum_core::split::{split_tour, split_tour_set};
    pub use perpetuum_core::stats::analyze;
    pub use perpetuum_core::var::{replan_variable, VarInput};
    pub use perpetuum_energy::CycleDistribution;
    pub use perpetuum_geom::{Field, Point2};
    pub use perpetuum_sim::{
        run, run_traced, GreedyPolicy, MtdPolicy, SimConfig, SimResult, VarPolicy, World,
    };
}
